package scenario

import (
	"math/rand"
	"reflect"
	"testing"
)

// catalogNames is the contract of the shipped catalog: these names are
// stable public API (CLI selectors, experiment names, EXPERIMENTS.md
// anchors) — renaming one is a breaking change and re-rolls its cells'
// RNG seeds.
var catalogNames = []string{
	// cachesca (§4.1)
	"branch-shadow", "evict+time", "flush+reload", "prime+probe", "tlb-channel",
	// transient (§4.2)
	"foreshadow", "meltdown", "ret2spec", "spectre-btb", "spectre-v1",
	// physical (§5)
	"bellcore", "clkscrew", "cpa", "dfa-piret-quisquater", "dpa", "kocher-timing",
	// attestation (§3)
	"measure-toctou", "quote-replay", "stale-tcb",
}

func TestCatalogNamesStable(t *testing.T) {
	if got := Default.Names(); !reflect.DeepEqual(got, catalogNames) {
		t.Errorf("catalog names = %v, want %v", got, catalogNames)
	}
	if Default.Len() < 15 {
		t.Errorf("catalog holds %d scenarios, want >= 15", Default.Len())
	}
}

func TestCatalogMetadataComplete(t *testing.T) {
	for _, s := range All() {
		section, summary := DescriptionOf(s)
		if section == "" || summary == "" {
			t.Errorf("%s: missing catalog metadata (section=%q summary=%q)", s.Name(), section, summary)
		}
		if rank := familyRank(s.Family()); rank >= len(FamilyOrder) {
			t.Errorf("%s: unknown family %q", s.Name(), s.Family())
		}
	}
}

// TestApplicabilityMatchesPaper pins each scenario's architecture axis to
// the paper's table rows: cache side channels need shared
// microarchitectural state (absent on embedded), predictor/MMU-dependent
// transient variants need their hardware structure, Foreshadow is
// SGX-specific, CLKSCREW needs the mobile DVFS surface, and the classical
// physical suite applies everywhere.
func TestApplicabilityMatchesPaper(t *testing.T) {
	embedded := []string{"smart", "sancus", "trustlite", "tytan"}
	highEnd := []string{"sgx", "sanctum", "trustzone", "sanctuary"}
	applicableSet := func(name string) map[string]bool {
		t.Helper()
		s, ok := Lookup(name)
		if !ok {
			t.Fatalf("scenario %s not registered", name)
		}
		out := map[string]bool{}
		for _, arch := range Architectures {
			ok, reason := s.Applicable(arch)
			if !ok && reason == "" {
				t.Errorf("%s/%s: not applicable but no reason given", name, arch)
			}
			out[arch] = ok
		}
		return out
	}
	// All five cache channels and the structure-dependent transient
	// variants: high-end yes, embedded no.
	for _, name := range []string{"flush+reload", "prime+probe", "evict+time", "tlb-channel",
		"branch-shadow", "spectre-btb", "ret2spec", "meltdown"} {
		set := applicableSet(name)
		for _, arch := range highEnd {
			if !set[arch] {
				t.Errorf("%s not applicable on %s", name, arch)
			}
		}
		for _, arch := range embedded {
			if set[arch] {
				t.Errorf("%s applicable on embedded %s", name, arch)
			}
		}
	}
	// Spectre v1 is mounted everywhere — its failure on in-order cores is
	// itself a paper observation.
	for arch, ok := range applicableSet("spectre-v1") {
		if !ok {
			t.Errorf("spectre-v1 not applicable on %s", arch)
		}
	}
	// Foreshadow: SGX only.
	for arch, ok := range applicableSet("foreshadow") {
		if ok != (arch == "sgx") {
			t.Errorf("foreshadow applicable=%v on %s", ok, arch)
		}
	}
	// CLKSCREW: the mobile DVFS surface.
	for arch, ok := range applicableSet("clkscrew") {
		if ok != (arch == "trustzone" || arch == "sanctuary") {
			t.Errorf("clkscrew applicable=%v on %s", ok, arch)
		}
	}
	// The rest of the physical suite applies to every class.
	for _, name := range []string{"kocher-timing", "dpa", "cpa", "dfa-piret-quisquater", "bellcore"} {
		for arch, ok := range applicableSet(name) {
			if !ok {
				t.Errorf("%s not applicable on %s", name, arch)
			}
		}
	}
	// Unknown architectures are never applicable.
	for _, s := range All() {
		if ok, _ := s.Applicable("enigma"); ok {
			t.Errorf("%s applicable on unknown architecture", s.Name())
		}
	}
}

func TestNewEnvValidatesAndDefaults(t *testing.T) {
	if _, err := NewEnv("enigma", 10, 1, nil); err == nil {
		t.Error("unknown architecture accepted")
	}
	env, err := NewEnv("sanctum", 0, 42, nil)
	if err != nil {
		t.Fatal(err)
	}
	if env.Class != ClassServer || env.Samples != 256 || env.RNG == nil {
		t.Errorf("env defaults wrong: %+v", env)
	}
	if _, err := env.SGX(); err == nil {
		t.Error("SGX instance handed out for sanctum")
	}
}

// TestMountSmoke mounts one cheap scenario per family end to end through
// the Env, verifying the uniform API carries a real measurement.
func TestMountSmoke(t *testing.T) {
	mount := func(name, arch string, samples int) Outcome {
		t.Helper()
		s, ok := Lookup(name)
		if !ok {
			t.Fatalf("scenario %s not registered", name)
		}
		env, err := NewEnv(arch, samples, 7, rand.New(rand.NewSource(7)))
		if err != nil {
			t.Fatal(err)
		}
		out, err := s.Mount(env)
		if err != nil {
			t.Fatalf("%s/%s: %v", name, arch, err)
		}
		if len(out.Rows) == 0 || out.Verdict == "" {
			t.Fatalf("%s/%s: empty outcome %+v", name, arch, out)
		}
		return out
	}
	if out := mount("flush+reload", "sgx", 64); out.Verdict != "ATTACK SUCCEEDS" {
		t.Errorf("flush+reload on undefended SGX = %q", out.Verdict)
	}
	if out := mount("spectre-v1", "sancus", 8); out.Verdict != "blocked" {
		t.Errorf("spectre-v1 on the in-order core = %q", out.Verdict)
	}
	if out := mount("dfa-piret-quisquater", "sancus", 8); out.Verdict != "KEY RECOVERED" {
		t.Errorf("DFA on unprotected AES = %q", out.Verdict)
	}
}
