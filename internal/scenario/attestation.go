package scenario

import (
	"fmt"

	"github.com/intrust-sim/intrust/internal/attestsvc"
)

// The §3 attestation-lifecycle attacks. Unlike the microarchitectural
// families these target the remote-attestation *protocol flow* — quote
// replay, the measure→use TOCTOU window, and stale-TCB acceptance — so
// they apply to every surveyed architecture (all eight implement remote
// attestation) and their mitigations are verifier/protocol policies
// (quote-freshness, measurement-lock, tcb-refresh) rather than hardware
// knobs. Each mounts a full measurement→quote→verify exchange against a
// deterministic per-cell authority derived from the job RNG.

func init() {
	for _, s := range attestationScenarios() {
		MustRegister(s)
	}
}

// attestAuthority derives the cell's quoting authority from the job RNG,
// so every cell gets distinct keys but identical ones on replay.
func attestAuthority(env *Env) *attestsvc.Authority {
	root := make([]byte, 32)
	env.RNG.Read(root)
	return attestsvc.NewAuthority(root)
}

// attestNonce draws one challenge nonce from the job RNG.
func attestNonce(env *Env) []byte {
	n := make([]byte, 16)
	env.RNG.Read(n)
	return n
}

// brokenEvidenceFor names a representative broken undefended sweep cell
// for the architecture's platform class — the evidence a real sweep would
// produce to revoke its baseline TCB (prime+probe breaks the undefended
// shared-cache platforms; differential fault injection breaks the
// undefended embedded ones).
func brokenEvidenceFor(arch string) string {
	if ClassOf(arch) == ClassEmbedded {
		return "dfa-piret-quisquater"
	}
	return "prime+probe"
}

func attestationScenarios() []Scenario {
	return []Scenario{
		&Spec{
			ID: "quote-replay", In: FamilyAttestation, Section: "3", Single: true,
			Summary: "captured quotes replayed into later verification sessions against a verifier " +
				"that does not enforce nonce single-use",
			Run: func(env *Env) (Outcome, error) {
				auth := attestAuthority(env)
				policy := attestsvc.CanonicalPolicy(nil)
				policy.Freshness = env.DefenseConfig().QuoteFreshness
				verifier := attestsvc.NewVerifier(auth, policy)
				im, err := attestsvc.BuildImage(env.Arch, attestsvc.ConfigNone, attestsvc.TCBBaseline)
				if err != nil {
					return Outcome{}, err
				}
				const sessions = 8
				replayed := 0
				for i := 0; i < sessions; i++ {
					nonce := attestNonce(env)
					q, err := auth.QuoteImage(im, nonce, nil)
					if err != nil {
						return Outcome{}, err
					}
					wire, err := q.Encode()
					if err != nil {
						return Outcome{}, err
					}
					if vd := verifier.Verify(wire, nonce); !vd.OK {
						return Outcome{}, fmt.Errorf("quote-replay: legitimate session %d rejected: %s", i, vd.Reason)
					}
					// The attacker captured the wire quote in transit and
					// later presents it to a verifier that does not bind a
					// fresh challenge; only nonce-freshness tracking can
					// tell it from a live exchange.
					if vd := verifier.Verify(wire, nil); vd.OK {
						replayed++
					} else if vd.Code != attestsvc.VerdictNonceReplayed {
						return Outcome{}, fmt.Errorf("quote-replay: unexpected rejection %s: %s", vd.Code, vd.Reason)
					}
				}
				v := LeakIf(replayed > 0)
				return Outcome{
					Rows:    Cell("quote-replay", env.Arch, fmt.Sprintf("%d/%d replays accepted", replayed, sessions), v),
					Metrics: map[string]float64{"replays_accepted": float64(replayed)},
					Verdict: v,
					Detail:  "captured-quote replay vs " + defenseName(env),
				}, nil
			},
		},
		&Spec{
			ID: "measure-toctou", In: FamilyAttestation, Section: "3", Single: true,
			Summary: "time-of-measure/time-of-quote gap: the enclave image is tampered after the load-time " +
				"measurement is ledgered, and the quote attests the stale digest",
			Applies: func(arch string) (bool, string) {
				if arch == "smart" {
					return false, "SMART's ROM attestation routine measures and invokes the region atomically: " +
						"there is no measure→use window to race"
				}
				return true, ""
			},
			Run: func(env *Env) (Outcome, error) {
				auth := attestAuthority(env)
				verifier := attestsvc.NewVerifier(auth, attestsvc.CanonicalPolicy(nil))
				im, err := attestsvc.BuildImage(env.Arch, attestsvc.ConfigNone, attestsvc.TCBBaseline)
				if err != nil {
					return Outcome{}, err
				}
				ledger := im.Measurement() // recorded at enclave load
				// Between measurement and quote the attacker patches one
				// byte of one page of the live image.
				page := env.RNG.Intn(len(im.Pages))
				off := env.RNG.Intn(len(im.Pages[page]))
				im.Pages[page][off] ^= byte(1 + env.RNG.Intn(255))
				nonce := attestNonce(env)
				var q *attestsvc.Quote
				if env.DefenseConfig().MeasurementLock {
					// measurement-lock: the quoting path re-measures the
					// live image, so the tampering lands in the quote.
					q, err = auth.QuoteImage(im, nonce, nil)
				} else {
					// Undefended flow: the quote signs the ledger entry.
					q, err = auth.QuoteMeasurement(env.Arch, ledger, im.Config, im.TCBVersion, nonce, nil)
				}
				if err != nil {
					return Outcome{}, err
				}
				wire, err := q.Encode()
				if err != nil {
					return Outcome{}, err
				}
				vd := verifier.Verify(wire, nonce)
				if !vd.OK && vd.Code != attestsvc.VerdictUnknownMeasurement {
					return Outcome{}, fmt.Errorf("measure-toctou: unexpected rejection %s: %s", vd.Code, vd.Reason)
				}
				// Acceptance means the verifier trusted a measurement that
				// no longer describes the running image.
				v := LeakIf(vd.OK)
				meas := "tampered image rejected"
				if vd.OK {
					meas = "tampered image attested as good"
				}
				return Outcome{
					Rows:    Cell("measure-toctou", env.Arch, meas, v),
					Metrics: map[string]float64{"stale_accepted": boolMetric(vd.OK)},
					Verdict: v,
					Detail:  "page patched between measure and quote vs " + defenseName(env),
				}, nil
			},
		},
		&Spec{
			ID: "stale-tcb", In: FamilyAttestation, Section: "3", Single: true,
			Summary: "quotes claiming a sweep-revoked baseline TCB presented to a verifier that never " +
				"refreshes its revocation state",
			Run: func(env *Env) (Outcome, error) {
				auth := attestAuthority(env)
				// The sweep found a broken undefended cell for this arch:
				// its baseline TCB is revoked, minimum version = stock.
				rev := attestsvc.Revoke([]attestsvc.Cell{{
					Scenario: brokenEvidenceFor(env.Arch),
					Arch:     env.Arch,
					Defense:  attestsvc.ConfigNone,
					Class:    attestsvc.ClassBroken,
				}})
				policy := attestsvc.CanonicalPolicy(rev)
				// tcb-refresh is the defense: without it the verifier
				// never pulls revocation state and MinTCB goes unenforced.
				policy.EnforceTCB = env.DefenseConfig().TCBRefresh
				verifier := attestsvc.NewVerifier(auth, policy)

				im, err := attestsvc.BuildImage(env.Arch, attestsvc.ConfigNone, attestsvc.TCBBaseline)
				if err != nil {
					return Outcome{}, err
				}
				nonce := attestNonce(env)
				q, err := auth.QuoteImage(im, nonce, nil)
				if err != nil {
					return Outcome{}, err
				}
				wire, err := q.Encode()
				if err != nil {
					return Outcome{}, err
				}
				vd := verifier.Verify(wire, nonce)
				if !vd.OK && vd.Code != attestsvc.VerdictTCBRevoked {
					return Outcome{}, fmt.Errorf("stale-tcb: unexpected rejection %s: %s", vd.Code, vd.Reason)
				}
				// Recovery sanity: a quote claiming the stock defense
				// configuration must verify under the same (enforcing)
				// policy — revocation is a ratchet, not a lockout.
				if env.DefenseConfig().TCBRefresh {
					stock, err := attestsvc.BuildImage(env.Arch, attestsvc.ConfigStock, attestsvc.TCBStock)
					if err != nil {
						return Outcome{}, err
					}
					nonce2 := attestNonce(env)
					q2, err := auth.QuoteImage(stock, nonce2, nil)
					if err != nil {
						return Outcome{}, err
					}
					wire2, err := q2.Encode()
					if err != nil {
						return Outcome{}, err
					}
					if vd2 := verifier.Verify(wire2, nonce2); !vd2.OK {
						return Outcome{}, fmt.Errorf("stale-tcb: stock-claiming quote rejected after revocation: %s", vd2.Reason)
					}
				}
				v := LeakIf(vd.OK)
				meas := "revoked-TCB quote rejected"
				if vd.OK {
					meas = "revoked-TCB quote accepted"
				}
				return Outcome{
					Rows:    Cell("stale-tcb", env.Arch, meas, v),
					Metrics: map[string]float64{"stale_accepted": boolMetric(vd.OK)},
					Verdict: v,
					Detail:  "sweep-revoked baseline TCB vs " + defenseName(env),
				}, nil
			},
		},
	}
}

// boolMetric renders a bool as a 0/1 metric value.
func boolMetric(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
