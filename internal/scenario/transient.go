package scenario

import (
	"fmt"

	"github.com/intrust-sim/intrust/internal/attack/transient"
)

// The five Section 4.2 transient-execution variants. Spectre v1 is
// mounted on every architecture — including the in-order embedded cores,
// where its expected failure demonstrates the paper's point that simple
// cores have no speculation window to exploit. The predictor-structure
// variants (BTB, RSB) and the MMU-dependent attacks (Meltdown) are n/a
// where the hardware structure they poison does not exist, and Foreshadow
// is SGX-specific by construction.

// sweepSecret is the fixed secret the transient scenarios try to
// extract; extraction is graded byte-for-byte against it.
var sweepSecret = []byte("SWEEPSEC")

func init() {
	for _, s := range transientScenarios() {
		MustRegister(s)
	}
}

// needsSpeculativeStructure gates the attacks that poison a predictor
// structure (BTB, RSB) the in-order embedded cores do not have.
func needsSpeculativeStructure(structure string) func(string) (bool, string) {
	return func(arch string) (bool, string) {
		if ClassOf(arch) == ClassEmbedded {
			return false, fmt.Sprintf("no %s on the in-order embedded core: nothing to poison", structure)
		}
		return true, ""
	}
}

// needsMMU gates Meltdown: without an MMU there is no supervisor/user
// address-space split to breach.
func needsMMU(arch string) (bool, string) {
	if ClassOf(arch) == ClassEmbedded {
		return false, "no MMU on the MPU-based embedded core: no supervisor address space to breach"
	}
	return true, ""
}

// sgxOnly gates Foreshadow, an L1 terminal fault against SGX's EPC.
func sgxOnly(arch string) (bool, string) {
	if arch != "sgx" {
		return false, "Foreshadow is an L1 terminal fault against SGX's EPC; " + arch + " has no equivalent surface"
	}
	return true, ""
}

// TransientVerdict grades one extraction result: LEAKS when more than
// half the target bytes came out. Shared with TAB4 so table and sweep
// verdicts agree.
func TransientVerdict(r transient.Result) string {
	if r.Correct > len(r.Target)/2 {
		return "LEAKS"
	}
	return "blocked"
}

func transientOutcome(name string, env *Env, r transient.Result, detail string) Outcome {
	v := TransientVerdict(r)
	return Outcome{
		Rows:    Cell(name, env.Arch, fmt.Sprintf("%d/%d bytes", r.Correct, len(r.Target)), v),
		Metrics: map[string]float64{"bytes_extracted": float64(r.Correct)},
		Verdict: v,
		Detail:  detail,
	}
}

func transientScenarios() []Scenario {
	return []Scenario{
		&Spec{
			ID: "spectre-v1", In: FamilyTransient, Section: "4.2", Single: true,
			Summary: "Spectre-PHT bounds-check bypass; expected blocked on in-order cores (no speculation window)",
			Run: func(env *Env) (Outcome, error) {
				// The spec-barrier defense (§4.2) compiles an lfence-style
				// barrier after the bounds check.
				r, err := transient.SpectreV1(env.Features(), sweepSecret, env.DefenseConfig().SpecBarrier)
				if err != nil {
					return Outcome{}, err
				}
				return transientOutcome("spectre-v1", env,
					r, fmt.Sprintf("Spectre v1 on the %s-class core vs %s", env.Class, env.DefenseLabel())), nil
			},
		},
		&Spec{
			ID: "spectre-btb", In: FamilyTransient, Section: "4.2", Single: true,
			Summary: "Spectre-BTB: cross-training an indirect branch to a disclosure gadget the victim never calls",
			Applies: needsSpeculativeStructure("branch-target buffer"),
			Run: func(env *Env) (Outcome, error) {
				// The btb-flush defense (§4.2) flushes predictor state on
				// context switches (IBPB), untraining the attacker's BTB
				// entries before the victim runs.
				r, err := transient.SpectreBTB(env.Features(), sweepSecret, env.DefenseConfig().PredictorFlush)
				if err != nil {
					return Outcome{}, err
				}
				return transientOutcome("spectre-btb", env,
					r, fmt.Sprintf("BTB cross-training on the %s-class core vs %s", env.Class, env.DefenseLabel())), nil
			},
		},
		&Spec{
			ID: "ret2spec", In: FamilyTransient, Section: "4.2", Single: true,
			Summary: "ret2spec: return stack buffer poisoning redirects a victim return to the gadget",
			Applies: needsSpeculativeStructure("return stack buffer"),
			Run: func(env *Env) (Outcome, error) {
				r, err := transient.Ret2spec(env.Features(), sweepSecret)
				if err != nil {
					return Outcome{}, err
				}
				return transientOutcome("ret2spec", env,
					r, fmt.Sprintf("RSB poisoning on the %s-class core", env.Class)), nil
			},
		},
		&Spec{
			ID: "meltdown", In: FamilyTransient, Section: "4.2", Single: true,
			Summary: "Meltdown: fault-deferred forwarding of supervisor data to a user-space probe",
			Applies: needsMMU,
			Run: func(env *Env) (Outcome, error) {
				r, err := transient.Meltdown(env.Features(), sweepSecret)
				if err != nil {
					return Outcome{}, err
				}
				return transientOutcome("meltdown", env,
					r, fmt.Sprintf("fault-forwarding probe on the %s-class core", env.Class)), nil
			},
		},
		&Spec{
			ID: "foreshadow", In: FamilyTransient, Section: "4.2", Single: true,
			Summary: "Foreshadow (L1TF): extract the SGX quoting enclave's attestation key through the EPC",
			Applies: sgxOnly,
			Run: func(env *Env) (Outcome, error) {
				s, err := env.SGX()
				if err != nil {
					return Outcome{}, err
				}
				// The SGX instance is rebuilt per pass (its MEE key and
				// quoting identity come from crypto/rand, so it cannot be
				// pooled); release the server DRAM backing once the attack
				// result — which only copies bytes out — is in hand.
				defer s.Platform().Mem.Release()
				r, err := transient.ForeshadowSGX(s, len(sweepSecret), false)
				if err != nil {
					return Outcome{}, err
				}
				return transientOutcome("foreshadow", env,
					r, "Foreshadow against the EPC (quoting-enclave key)"), nil
			},
		},
	}
}
