package scenario

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
)

func testSpec(name, family string) *Spec {
	return &Spec{ID: name, In: family, Run: func(*Env) (Outcome, error) { return Outcome{}, nil }}
}

func TestRegistryRejectsBadRegistrations(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(nil); err == nil {
		t.Error("nil scenario accepted")
	}
	if err := r.Register(testSpec("", FamilyPhysical)); err == nil {
		t.Error("empty name accepted")
	}
	if err := r.Register(testSpec("x", "")); err == nil {
		t.Error("empty family accepted")
	}
	if err := r.Register(testSpec("dup", FamilyPhysical)); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(testSpec("dup", FamilyPhysical)); err == nil {
		t.Error("duplicate name accepted")
	}
	if err := r.Register(testSpec("DUP", FamilyPhysical)); err == nil {
		t.Error("case-colliding name accepted (lookups are case-insensitive)")
	}
}

func TestRegistryLookupCaseInsensitive(t *testing.T) {
	r := NewRegistry()
	r.MustRegister(testSpec("Flush+Reload", FamilyCacheSCA))
	for _, q := range []string{"Flush+Reload", "flush+reload", "FLUSH+RELOAD"} {
		if s, ok := r.Lookup(q); !ok || s.Name() != "Flush+Reload" {
			t.Errorf("Lookup(%q) = %v, %v", q, s, ok)
		}
	}
	if _, ok := r.Lookup("rowhammer"); ok {
		t.Error("unknown name resolved")
	}
}

// TestRegistryDeterministicOrder registers in scrambled order and checks
// that All comes back in the canonical (family rank, name) order, stably.
func TestRegistryDeterministicOrder(t *testing.T) {
	r := NewRegistry()
	for _, s := range []*Spec{
		testSpec("zz", FamilyPhysical),
		testSpec("bb", FamilyCacheSCA),
		testSpec("mm", FamilyTransient),
		testSpec("aa", FamilyPhysical),
		testSpec("cc", FamilyCacheSCA),
	} {
		r.MustRegister(s)
	}
	want := []string{"bb", "cc", "mm", "aa", "zz"}
	if got := r.Names(); !reflect.DeepEqual(got, want) {
		t.Errorf("All order = %v, want %v", got, want)
	}
	// Stable across repeated enumeration (map iteration must not leak).
	first := r.Names()
	for i := 0; i < 20; i++ {
		if got := r.Names(); !reflect.DeepEqual(got, first) {
			t.Fatalf("enumeration order changed between calls: %v vs %v", got, first)
		}
	}
}

func TestRegistryByFamilyAndFamilies(t *testing.T) {
	r := NewRegistry()
	r.MustRegister(testSpec("p1", FamilyPhysical))
	r.MustRegister(testSpec("c1", FamilyCacheSCA))
	r.MustRegister(testSpec("c2", FamilyCacheSCA))
	if got := r.ByFamily("CACHESCA"); len(got) != 2 || got[0].Name() != "c1" {
		t.Errorf("ByFamily(CACHESCA) = %v", got)
	}
	if got := r.ByFamily("transient"); len(got) != 0 {
		t.Errorf("empty family returned %v", got)
	}
	if got := r.Families(); !reflect.DeepEqual(got, []string{FamilyCacheSCA, FamilyPhysical}) {
		t.Errorf("Families = %v", got)
	}
}

// TestRegistryConcurrentAccess exercises the registry from many
// goroutines — meaningful under `go test -race`.
func TestRegistryConcurrentAccess(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				r.MustRegister(testSpec(fmt.Sprintf("s-%d-%d", g, i), FamilyOrder[i%3]))
				r.Lookup(fmt.Sprintf("s-%d-%d", g, i/2))
				r.All()
				r.ByFamily(FamilyCacheSCA)
			}
		}(g)
	}
	wg.Wait()
	if r.Len() != 8*50 {
		t.Errorf("registry holds %d scenarios, want %d", r.Len(), 8*50)
	}
}
