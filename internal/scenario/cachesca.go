package scenario

import (
	"fmt"
	"math/rand"

	"github.com/intrust-sim/intrust/internal/attack/cachesca"
	"github.com/intrust-sim/intrust/internal/stats"
)

// The five Section 4.1 cache side-channel variants. All of them need
// microarchitectural state shared with the victim, which the embedded
// architectures do not have — the paper's observation that "none [of the
// embedded architectures] even considers cache side channels".

func init() {
	for _, s := range cacheScenarios() {
		MustRegister(s)
	}
}

// noSharedCache is the applicability rule for the cache-resident attacks.
func noSharedCache(arch string) (bool, string) {
	if ClassOf(arch) == ClassEmbedded {
		return false, "no shared caches on the embedded platform: cache side channels not applicable " +
			"(paper §4.1: none of the embedded architectures even considers them)"
	}
	return true, ""
}

// noSharedTLB gates the TLB channel: the embedded core has an MPU, no MMU
// and therefore no TLB to share.
func noSharedTLB(arch string) (bool, string) {
	if ClassOf(arch) == ClassEmbedded {
		return false, "no MMU and no TLB on the MPU-based embedded core: the TLB channel is not applicable"
	}
	return true, ""
}

// noPredictor gates branch shadowing: the in-order embedded core has no
// branch predictor to shadow.
func noPredictor(arch string) (bool, string) {
	if ClassOf(arch) == ClassEmbedded {
		return false, "no branch predictor on the in-order embedded core: branch shadowing is not applicable"
	}
	return true, ""
}

// CacheVerdict grades a key-recovery result against the classic OST
// 64-bit-reduction threshold (>= 14/16 first-round key nibbles). TAB3
// and the sweep grade with the same function so their verdicts can never
// drift apart.
func CacheVerdict(res cachesca.Result) string {
	switch {
	case res.Success:
		return "ATTACK SUCCEEDS"
	case res.NibblesCorrect >= 4:
		return "partial leak"
	}
	return "defense holds"
}

// defenseName names the cell's mitigation set for outcome detail lines.
// It derives from the environment's resolved defenses (ultimately the
// defense registry) — never a parallel arch→string table — so the label
// cannot drift from the wiring that actually ran.
func defenseName(env *Env) string {
	if label := env.DefenseLabel(); label != "none" {
		return label + " (" + env.Arch + ")"
	}
	return "no defense (" + env.Arch + ")"
}

// cacheOutcome renders a key-nibble recovery outcome.
func cacheOutcome(name string, env *Env, res cachesca.Result, detail string) Outcome {
	v := CacheVerdict(res)
	return Outcome{
		Rows:    Cell(name, env.Arch, fmt.Sprintf("%d/16 nibbles @ %d samples", res.NibblesCorrect, res.Samples), v),
		Metrics: map[string]float64{"key_nibbles": float64(res.NibblesCorrect)},
		Verdict: v,
		Detail:  detail,
	}
}

// secretBytesFor sizes a bit-recovery channel's secret so one recovery
// round is one sample: Samples/8 bytes, at least one.
func secretBytesFor(samples int) int {
	if n := samples / 8; n > 1 {
		return n
	}
	return 1
}

// cacheRun is the resumable-attack contract the cachesca package's
// *Run types share: extend the cumulative sample set, grade what has
// been gathered.
type cacheRun interface {
	Extend(n int, rng *rand.Rand)
	Result() cachesca.Result
}

// seqCacheResult drives one resumable key-recovery attack through the
// plan's checkpoint ladder: extend to each checkpoint, grade the
// cumulative scoreboard, stop on a full recovery. Sub-reference
// checkpoints grade on Success alone — a partial leak at a starved
// budget is not evidence the cell is broken — while a pass that drains
// the plan ends on exactly the fixed-budget statistic.
func seqCacheResult(run cacheRun, plan *stats.Plan, env *Env) cachesca.Result {
	done := 0
	var res cachesca.Result
	for {
		n, ok := plan.Next()
		if !ok {
			break
		}
		run.Extend(n-done, env.RNG)
		done = n
		res = run.Result()
		plan.Grade(res.Success)
	}
	return res
}

// seqBitChannel drives a bit-recovery channel (TLB, BTB) through the
// plan: one sample recovers one secret bit, so each checkpoint extends
// the recovered prefix of a reference-sized secret and grades the
// cumulative hit ratio against the same 14/16 bar as the fixed grading.
// The full secret is drawn up front so a full pass consumes the RNG
// exactly like the fixed-budget mount.
func seqBitChannel(env *Env, plan *stats.Plan, recover func(chunk []byte) (correct int)) (correct, bits int) {
	secret := make([]byte, secretBytesFor(plan.Reference()))
	env.RNG.Read(secret)
	done := 0
	for {
		n, ok := plan.Next()
		if !ok {
			break
		}
		k := len(secret) * n / plan.Reference()
		if k > done {
			correct += recover(secret[done:k])
			done = k
		}
		bits = done * 8
		plan.Grade(bits > 0 && correct*16 >= bits*14)
	}
	return correct, bits
}

// bitOutcome renders a bit-recovery outcome (TLB, BTB channels), graded
// against the same 14/16 recovery ratio as the key-nibble attacks.
func bitOutcome(name string, env *Env, correct, total int, detail string) Outcome {
	v := "defense holds"
	if correct*16 >= total*14 {
		v = "ATTACK SUCCEEDS"
	}
	return Outcome{
		Rows:    Cell(name, env.Arch, fmt.Sprintf("%d/%d bits", correct, total), v),
		Metrics: map[string]float64{"bits": float64(correct)},
		Verdict: v,
		Detail:  detail,
	}
}

// switchFlushPredictor models the btb-flush defense around the shared
// predictor: every attacker query follows a context switch away from the
// victim, and the switch flushes BTB/PHT/RSB state (IBPB), so shadow
// queries only ever observe reset predictions.
type switchFlushPredictor struct {
	p interface {
		cachesca.BranchPredictor
		Flush()
	}
}

// UpdateBranch trains the underlying predictor (the victim's own
// executions are unaffected by switch hygiene).
func (f *switchFlushPredictor) UpdateBranch(pc uint32, taken bool) { f.p.UpdateBranch(pc, taken) }

// PredictBranch flushes (the victim→attacker switch) before querying.
func (f *switchFlushPredictor) PredictBranch(pc uint32) bool {
	f.p.Flush()
	return f.p.PredictBranch(pc)
}

func cacheScenarios() []Scenario {
	return []Scenario{
		&Spec{
			ID: "flush+reload", In: FamilyCacheSCA, Section: "4.1",
			Summary: "Flush+Reload (Yarom-Falkner) key recovery against T-table AES via shared table pages",
			Applies: noSharedCache,
			Run: func(env *Env) (Outcome, error) {
				p := env.NewPlatform()
				v, err := env.AESVictim(p)
				if err != nil {
					return Outcome{}, err
				}
				res := cachesca.FlushReload(v, env.Samples, AttackerDomain, env.RNG)
				return cacheOutcome("flush+reload", env, res, "flush+reload vs "+defenseName(env)), nil
			},
			RunSeq: func(env *Env, plan *stats.Plan) (Outcome, error) {
				p := env.NewPlatform()
				v, err := env.AESVictim(p)
				if err != nil {
					return Outcome{}, err
				}
				res := seqCacheResult(cachesca.NewFlushReloadRun(v, AttackerDomain), plan, env)
				return cacheOutcome("flush+reload", env, res, "flush+reload vs "+defenseName(env)), nil
			},
		},
		&Spec{
			ID: "prime+probe", In: FamilyCacheSCA, Section: "4.1",
			Summary: "Prime+Probe (Osvik-Shamir-Tromer) through the shared LLC, no shared memory needed",
			Applies: noSharedCache,
			Run: func(env *Env) (Outcome, error) {
				p := env.NewPlatform()
				v, err := env.AESVictim(p)
				if err != nil {
					return Outcome{}, err
				}
				res := cachesca.PrimeProbe(v, p.LLC, env.Samples, AttackerDomain, env.RNG)
				return cacheOutcome("prime+probe", env, res, "prime+probe vs "+defenseName(env)), nil
			},
			RunSeq: func(env *Env, plan *stats.Plan) (Outcome, error) {
				p := env.NewPlatform()
				v, err := env.AESVictim(p)
				if err != nil {
					return Outcome{}, err
				}
				res := seqCacheResult(cachesca.NewPrimeProbeRun(v, p.LLC, AttackerDomain), plan, env)
				return cacheOutcome("prime+probe", env, res, "prime+probe vs "+defenseName(env)), nil
			},
		},
		&Spec{
			ID: "evict+time", In: FamilyCacheSCA, Section: "4.1",
			Summary: "Evict+Time whole-encryption timing correlation (statistical; needs a large sample floor)",
			Applies: noSharedCache,
			// The published attack is slower and noisier than the
			// resident-attacker techniques — it needs roughly 8x their
			// budget for a stable differential. Declared as a floor so
			// the reported Samples field states what the cell runs.
			Floor: 2048,
			Run: func(env *Env) (Outcome, error) {
				p := env.NewPlatform()
				v, err := env.AESVictim(p)
				if err != nil {
					return Outcome{}, err
				}
				res := cachesca.EvictTime(v, env.Samples, env.RNG)
				return cacheOutcome("evict+time", env, res, "evict+time vs "+defenseName(env)), nil
			},
			RunSeq: func(env *Env, plan *stats.Plan) (Outcome, error) {
				p := env.NewPlatform()
				v, err := env.AESVictim(p)
				if err != nil {
					return Outcome{}, err
				}
				res := seqCacheResult(cachesca.NewEvictTimeRun(v), plan, env)
				return cacheOutcome("evict+time", env, res, "evict+time vs "+defenseName(env)), nil
			},
		},
		&Spec{
			ID: "tlb-channel", In: FamilyCacheSCA, Section: "4.1",
			Summary: "TLB Prime+Probe (TLBleed): secret-dependent page translations observed via shared TLB sets",
			Applies: noSharedTLB,
			Run: func(env *Env) (Outcome, error) {
				p := env.NewPlatform()
				// One prime/translate/probe round recovers one secret
				// bit, so the sample budget sizes the secret.
				secret := make([]byte, secretBytesFor(env.Samples))
				env.RNG.Read(secret)
				_, correct := cachesca.TLBAttack(p.Core(0).TLB, secret, VictimASID, AttackerASID)
				return bitOutcome("tlb-channel", env, correct, len(secret)*8,
					"TLB prime+probe vs "+defenseName(env)), nil
			},
			RunSeq: func(env *Env, plan *stats.Plan) (Outcome, error) {
				p := env.NewPlatform()
				correct, bits := seqBitChannel(env, plan, func(chunk []byte) int {
					_, c := cachesca.TLBAttack(p.Core(0).TLB, chunk, VictimASID, AttackerASID)
					return c
				})
				return bitOutcome("tlb-channel", env, correct, bits,
					"TLB prime+probe vs "+defenseName(env)), nil
			},
		},
		&Spec{
			ID: "branch-shadow", In: FamilyCacheSCA, Section: "4.1",
			Summary: "BTB/PHT branch shadowing (Lee et al.): secret-dependent branches via the shared predictor",
			Applies: noPredictor,
			Run: func(env *Env) (Outcome, error) {
				p := env.NewPlatform()
				// One shadow-query round per secret bit, as above.
				secret := make([]byte, secretBytesFor(env.Samples))
				env.RNG.Read(secret)
				var pred cachesca.BranchPredictor = p.Core(0).Pred
				if env.DefenseConfig().PredictorFlush {
					// IBPB-style btb-flush (§4.2): predictor state is
					// invalidated on every victim→attacker switch, so the
					// shadow query observes reset state.
					pred = &switchFlushPredictor{p: p.Core(0).Pred}
				}
				_, correct := cachesca.BranchShadow(pred, secret, 40)
				return bitOutcome("branch-shadow", env, correct, len(secret)*8,
					"branch shadowing vs "+defenseName(env)), nil
			},
			RunSeq: func(env *Env, plan *stats.Plan) (Outcome, error) {
				p := env.NewPlatform()
				var pred cachesca.BranchPredictor = p.Core(0).Pred
				if env.DefenseConfig().PredictorFlush {
					pred = &switchFlushPredictor{p: p.Core(0).Pred}
				}
				correct, bits := seqBitChannel(env, plan, func(chunk []byte) int {
					_, c := cachesca.BranchShadow(pred, chunk, 40)
					return c
				})
				return bitOutcome("branch-shadow", env, correct, bits,
					"branch shadowing vs "+defenseName(env)), nil
			},
		},
	}
}
