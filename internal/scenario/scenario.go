// Package scenario is the unified attack-scenario API: every attack
// variant the simulator can mount — the Section 4.1 cache side channels,
// the Section 4.2 transient-execution attacks and the Section 5 classical
// physical attacks — is a first-class, enumerable, engine-schedulable
// Scenario registered in a process-wide catalog.
//
// Before this layer existed, each attack was a bespoke free function with
// its own signature (victim here, RNG there, sample budget somewhere
// else) and the sweep could only drive three hand-picked "representative"
// families through a hardcoded switch. A Scenario instead mounts from a
// uniform typed Env (architecture, platform class, CPU features, victim
// constructors, per-job RNG, sample budget), declares which architectures
// it applies to — with the paper's reason when it does not — and
// self-registers at init time, so internal/core's sweep enumerates the
// full registry × architecture grid without knowing any attack by name.
//
// The catalog files (cachesca.go, transient.go, physical.go) wrap the
// attack implementations in internal/attack/*; adding a new attack is one
// Spec literal plus a Register call.
package scenario

import (
	"fmt"

	"github.com/intrust-sim/intrust/internal/engine"
	"github.com/intrust-sim/intrust/internal/stats"
)

// Family names, in the paper's section order. Registry ordering and the
// sweep's family axis both follow this ranking.
const (
	// FamilyCacheSCA is the Section 4.1 software cache side channels.
	FamilyCacheSCA = "cachesca"
	// FamilyTransient is the Section 4.2 transient-execution attacks.
	FamilyTransient = "transient"
	// FamilyPhysical is the Section 5 classical physical attacks.
	FamilyPhysical = "physical"
	// FamilyAttestation is the attacks on the §3 remote-attestation
	// protocol flow (quote replay, measure/use TOCTOU, stale-TCB
	// acceptance).
	FamilyAttestation = "attestation"
)

// FamilyOrder lists the scenario families in the paper's section order
// (§4.1, §4.2, §5, then the §3 attestation lifecycle, which the survey
// introduces first but this codebase grew last) — the deterministic
// ordering used by Registry.All.
var FamilyOrder = []string{FamilyCacheSCA, FamilyTransient, FamilyPhysical, FamilyAttestation}

// Outcome is what a mounted scenario measured. It is the engine's outcome
// type: scenarios feed the experiment scheduler directly, so the table
// rows, metrics, verdict and detail carry through to the text tables and
// the JSON report unchanged.
type Outcome = engine.Outcome

// Scenario is one attack variant as a schedulable unit.
type Scenario interface {
	// Name uniquely identifies the scenario in the registry
	// (e.g. "flush+reload", "spectre-v1", "clkscrew").
	Name() string
	// Family is the attack family the scenario belongs to (one of
	// FamilyCacheSCA, FamilyTransient, FamilyPhysical).
	Family() string
	// Applicable reports whether the scenario can be meaningfully
	// mounted against the given architecture; when it cannot, reason
	// states why in the paper's terms (e.g. "no shared caches on the
	// embedded platform").
	Applicable(arch string) (ok bool, reason string)
	// Mount runs the attack from the typed environment and reports what
	// it measured. Implementations must draw all randomness from
	// env.RNG / env.Seed so results are deterministic under any
	// engine parallelism.
	Mount(env *Env) (Outcome, error)
}

// Sampler is an optional Scenario extension declaring a minimum sample
// budget; the sweep raises a cell's budget to this floor so the reported
// Samples field states what the job actually ran. Under adaptive
// sampling the floor doubles as the cell's reference budget: the batch
// budget at which one measurement is considered fully informative.
type Sampler interface {
	MinSamples() int
}

// OneShotSampler is an optional Scenario extension marking scenarios
// whose measurement does not consume the sample budget at all — fault
// attacks needing a handful of faulty ciphertexts, transient extraction
// running to completion regardless of Samples. The adaptive engine
// settles such cells with a single mount instead of corroborating
// passes that would multiply the real cost without adding evidence.
type OneShotSampler interface {
	// OneShot reports that one mount settles a cell regardless of the
	// sample budget.
	OneShot() bool
}

// SequentialSampler is an optional Scenario extension for cumulative
// sequential sampling: MountSeq runs ONE measurement pass that extends a
// single cumulative sample set to each checkpoint the plan issues and
// grades the statistic there. Sub-reference checkpoints must grade
// conservatively — only a full secret recovery counts, never a partial
// signal — because a starved budget is expected to look mitigated even
// on broken cells. A pass that drains the plan without a recovery has
// measured exactly what the fixed-budget engine would have measured
// (same seed, same sample count, same statistic); one that stops early
// has already recovered the secret, which more samples cannot undo.
type SequentialSampler interface {
	MountSeq(env *Env, plan *stats.Plan) (Outcome, error)
}

// Describer is an optional Scenario extension providing catalog metadata
// for `intrust attacks` and the generated EXPERIMENTS.md.
type Describer interface {
	// Describe returns the paper section the scenario reproduces
	// (e.g. "4.1") and a one-line summary of what it mounts.
	Describe() (section, summary string)
}

// Spec is the standard Scenario implementation: a declarative record
// wrapping a mount function. All catalog scenarios are Specs, and
// downstream users can register their own.
type Spec struct {
	// ID is the unique scenario name.
	ID string
	// In is the scenario's family.
	In string
	// Section is the paper section reproduced (e.g. "4.1").
	Section string
	// Summary is a one-line description for the catalog listing.
	Summary string
	// Floor is the minimum meaningful sample budget (0 = any). Adaptive
	// sampling treats it as the reference budget: mitigated verdicts
	// from batches below it are discounted as possible sample
	// starvation.
	Floor int
	// Single marks the scenario's measurement as budget-independent
	// (see OneShotSampler).
	Single bool
	// Applies decides per-architecture applicability; nil means the
	// scenario applies to every known architecture.
	Applies func(arch string) (bool, string)
	// Run mounts the attack.
	Run func(env *Env) (Outcome, error)
	// RunSeq, when non-nil, mounts one cumulative sequential-sampling
	// pass (see SequentialSampler). Scenarios without it fall back to
	// full-budget Run passes under the adaptive engine.
	RunSeq func(env *Env, plan *stats.Plan) (Outcome, error)
}

// Name implements Scenario.
func (s *Spec) Name() string { return s.ID }

// Family implements Scenario.
func (s *Spec) Family() string { return s.In }

// Applicable implements Scenario. Unknown architectures are never
// applicable.
func (s *Spec) Applicable(arch string) (bool, string) {
	if !KnownArchitecture(arch) {
		return false, fmt.Sprintf("unknown architecture %q", arch)
	}
	if s.Applies == nil {
		return true, ""
	}
	return s.Applies(arch)
}

// Mount implements Scenario.
func (s *Spec) Mount(env *Env) (Outcome, error) {
	if s.Run == nil {
		return Outcome{}, fmt.Errorf("scenario %s has no mount function", s.ID)
	}
	return s.Run(env)
}

// MinSamples implements Sampler.
func (s *Spec) MinSamples() int { return s.Floor }

// OneShot implements OneShotSampler.
func (s *Spec) OneShot() bool { return s.Single }

// MountSeq implements SequentialSampler; check CanMountSeq before
// calling.
func (s *Spec) MountSeq(env *Env, plan *stats.Plan) (Outcome, error) {
	if s.RunSeq == nil {
		return Outcome{}, fmt.Errorf("scenario %s has no sequential mount", s.ID)
	}
	return s.RunSeq(env, plan)
}

// Describe implements Describer.
func (s *Spec) Describe() (string, string) { return s.Section, s.Summary }

// Verdict classes of the 3-D sweep: every cell's scenario-specific
// verdict string normalizes to broken (the attack still recovers the
// secret), mitigated (it no longer does) or n/a (the attack or the
// defense has no substrate on the architecture, with the paper's reason).
const (
	// ClassBroken marks cells where the attack succeeds despite the
	// cell's defense configuration.
	ClassBroken = "broken"
	// ClassMitigated marks cells where the configuration stops the
	// attack.
	ClassMitigated = "mitigated"
	// ClassNA marks cells with no substrate for the attack or defense.
	ClassNA = "n/a"
)

// VerdictClass normalizes a scenario verdict to the sweep's three-valued
// broken/mitigated/n-a grading. A partial leak counts as broken: the
// paper's bar for a mitigation is stopping key recovery, not slowing it.
// Unknown verdicts (engine ERROR rows) normalize to "".
func VerdictClass(verdict string) string {
	switch verdict {
	case "ATTACK SUCCEEDS", "LEAKS", "KEY RECOVERED", "partial leak":
		return ClassBroken
	case "defense holds", "blocked":
		return ClassMitigated
	case "n/a":
		return ClassNA
	}
	return ""
}

// Cell renders the sweep's canonical single table row for a scenario
// outcome: scenario name, architecture, measurement, verdict.
func Cell(name, arch, measurement, verdict string) [][]string {
	return [][]string{{name, arch, measurement, verdict}}
}

// MinSamplesOf returns the scenario's declared sample floor, or 0 when it
// declares none.
func MinSamplesOf(s Scenario) int {
	if ms, ok := s.(Sampler); ok {
		return ms.MinSamples()
	}
	return 0
}

// IsOneShot reports whether the scenario declares its measurement
// budget-independent (see OneShotSampler).
func IsOneShot(s Scenario) bool {
	if os, ok := s.(OneShotSampler); ok {
		return os.OneShot()
	}
	return false
}

// CanMountSeq reports whether the scenario supports cumulative
// sequential sampling. A *Spec qualifies only when its RunSeq is wired —
// the Spec type always carries the method, but a nil RunSeq would error.
func CanMountSeq(s Scenario) bool {
	if sp, ok := s.(*Spec); ok {
		return sp.RunSeq != nil
	}
	_, ok := s.(SequentialSampler)
	return ok
}

// MountSeq runs one cumulative sequential-sampling pass on a scenario
// that supports it (check CanMountSeq first).
func MountSeq(s Scenario, env *Env, plan *stats.Plan) (Outcome, error) {
	seq, ok := s.(SequentialSampler)
	if !ok {
		return Outcome{}, fmt.Errorf("scenario %s does not support sequential sampling", s.Name())
	}
	return seq.MountSeq(env, plan)
}

// DescriptionOf returns the scenario's paper section and summary, or
// empty strings when it provides none.
func DescriptionOf(s Scenario) (section, summary string) {
	if d, ok := s.(Describer); ok {
		return d.Describe()
	}
	return "", ""
}
