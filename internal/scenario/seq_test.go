package scenario

import (
	"reflect"
	"testing"

	"github.com/intrust-sim/intrust/internal/defense"
	"github.com/intrust-sim/intrust/internal/stats"
)

// TestBatchEnvDerivation pins the sequential-sampling seed contract:
// pass 0 runs under the job seed itself (the fixed-engine identity),
// later passes derive deterministically from (job seed, pass index),
// and deriving never perturbs the parent environment.
func TestBatchEnvDerivation(t *testing.T) {
	env, err := NewEnvWithDefenses("sgx", 256, 12345, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	b0 := env.Batch(0, 64)
	if b0.Seed != env.Seed {
		t.Errorf("pass 0 seed %d, want the job seed %d", b0.Seed, env.Seed)
	}
	if b0.Samples != 64 {
		t.Errorf("pass 0 samples %d, want 64", b0.Samples)
	}
	b1 := env.Batch(1, 64)
	if b1.Seed == env.Seed {
		t.Error("pass 1 reuses the job seed; passes would re-measure identical noise")
	}
	if again := env.Batch(1, 64); again.Seed != b1.Seed {
		t.Errorf("pass 1 seed not deterministic: %d vs %d", again.Seed, b1.Seed)
	}
	if env.Samples != 256 || env.Seed != 12345 {
		t.Errorf("Batch mutated the parent env: %+v", env)
	}
	if b0.Arch != env.Arch || b0.Class != env.Class || b0.DefenseLabel() != env.DefenseLabel() {
		t.Error("Batch dropped architecture/defense wiring")
	}
}

// TestSamplingProfiles pins the catalog's sampling taxonomy: every
// registered scenario is either one-shot (budget-independent) or
// sequential (cumulative checkpoint passes) — never both, never
// neither — so the adaptive engine always has an efficient path.
func TestSamplingProfiles(t *testing.T) {
	oneShot := map[string]bool{
		"spectre-v1": true, "spectre-btb": true, "ret2spec": true, "meltdown": true, "foreshadow": true,
		"dfa-piret-quisquater": true, "bellcore": true, "clkscrew": true,
		"quote-replay": true, "measure-toctou": true, "stale-tcb": true,
	}
	for _, s := range All() {
		want := oneShot[s.Name()]
		if got := IsOneShot(s); got != want {
			t.Errorf("%s: IsOneShot = %v, want %v", s.Name(), got, want)
		}
		if got := CanMountSeq(s); got == want {
			t.Errorf("%s: CanMountSeq = %v with IsOneShot = %v; every scenario must be exactly one",
				s.Name(), got, want)
		}
	}
	if _, err := MountSeq(&Spec{ID: "no-seq"}, nil, nil); err == nil {
		t.Error("MountSeq on a scenario without RunSeq did not error")
	}
}

// seqEnv builds a fresh environment for one (arch, defenses, samples)
// cell at a fixed seed.
func seqEnv(t *testing.T, arch string, samples int, defenses []defense.Defense) *Env {
	t.Helper()
	env, err := NewEnvWithDefenses(arch, samples, 99, nil, defenses)
	if err != nil {
		t.Fatal(err)
	}
	return env
}

// TestMountSeqMatchesMountAtStoppingBudget is the verdict-preservation
// identity at the scenario layer: a sequential pass that stops at
// checkpoint n (early on a recovery, or at the reference budget by
// draining the ladder) must measure exactly what the plain Mount
// measures with Samples=n from the same seed — the cumulative extension
// consumes the RNG identically. Each sequential scenario is exercised on
// a broken cell (early stop) and, where a defense can hold it, on a
// mitigated cell (full drain).
func TestMountSeqMatchesMountAtStoppingBudget(t *testing.T) {
	ctAES, ok := defense.Lookup("ct-aes")
	if !ok {
		t.Fatal("ct-aes defense missing")
	}
	masked, ok := defense.Lookup("masked-aes")
	if !ok {
		t.Fatal("masked-aes defense missing")
	}
	for _, tc := range []struct {
		name, arch string
		defenses   []defense.Defense
	}{
		{"flush+reload", "sgx", nil},
		{"flush+reload", "sgx", []defense.Defense{ctAES}}, // mitigated: full drain
		{"prime+probe", "trustzone", nil},
		{"evict+time", "sgx", []defense.Defense{ctAES}}, // mitigated at the 2048 floor
		{"tlb-channel", "sgx", nil},
		{"branch-shadow", "sanctum", nil},
		{"kocher-timing", "sgx", nil},
		{"dpa", "trustzone", []defense.Defense{masked}}, // mitigated at the 1500 floor
		{"cpa", "trustzone", nil},
		{"cpa", "trustzone", []defense.Defense{masked}},
	} {
		s, ok := Lookup(tc.name)
		if !ok {
			t.Fatalf("scenario %s missing", tc.name)
		}
		ref := 64
		if floor := MinSamplesOf(s); ref < floor {
			ref = floor
		}
		plan := stats.NewPlan(stats.Policy{}, ref)
		seq, err := MountSeq(s, seqEnv(t, tc.arch, ref, tc.defenses), plan)
		if err != nil {
			t.Fatalf("%s/%s seq: %v", tc.name, tc.arch, err)
		}
		if plan.Used() == 0 {
			t.Fatalf("%s/%s: pass graded nothing", tc.name, tc.arch)
		}
		fixed, err := s.Mount(seqEnv(t, tc.arch, plan.Used(), tc.defenses))
		if err != nil {
			t.Fatalf("%s/%s fixed: %v", tc.name, tc.arch, err)
		}
		if !reflect.DeepEqual(seq.Rows, fixed.Rows) || seq.Verdict != fixed.Verdict {
			t.Errorf("%s/%s: sequential pass stopped at %d and measured %v (%q), fixed Mount at %d measured %v (%q)",
				tc.name, tc.arch, plan.Used(), seq.Rows, seq.Verdict, plan.Used(), fixed.Rows, fixed.Verdict)
		}
		if !plan.Broken() && plan.Used() != ref {
			t.Errorf("%s/%s: unrecovered pass stopped at %d, want the full reference %d",
				tc.name, tc.arch, plan.Used(), ref)
		}
		if plan.Broken() && VerdictClass(seq.Verdict) != ClassBroken {
			t.Errorf("%s/%s: plan stopped on a recovery but verdict is %q", tc.name, tc.arch, seq.Verdict)
		}
	}
}
