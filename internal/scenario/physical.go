package scenario

import (
	"fmt"
	"math/big"
	"math/rand"

	"github.com/intrust-sim/intrust/internal/attack/physical"
	"github.com/intrust-sim/intrust/internal/power"
	"github.com/intrust-sim/intrust/internal/softcrypto"
	"github.com/intrust-sim/intrust/internal/stats"
)

// The Section 5 classical physical suite. Physical attacks assume an
// adversary with (at least) proximity to the device, which the paper
// grants on every platform class — with the exception of CLKSCREW, whose
// attack surface is the software-exposed DVFS regulator of mobile SoCs.

func init() {
	for _, s := range physicalScenarios() {
		MustRegister(s)
	}
}

// mobileOnlyDVFS gates CLKSCREW on the architectures whose platform
// exposes a software-reachable DVFS regulator.
func mobileOnlyDVFS(arch string) (bool, string) {
	if ClassOf(arch) != ClassMobile {
		return false, "no software-exposed DVFS regulator on the " + ClassOf(arch) +
			" platform: CLKSCREW's attack surface is the mobile SoC's frequency/voltage interface"
	}
	return true, ""
}

// LeakIf is the physical suite's verdict convention, shared with TAB5.
func LeakIf(b bool) string {
	if b {
		return "KEY RECOVERED"
	}
	return "blocked"
}

// kocherTarget returns the shared 61-bit modexp victim parameters every
// Kocher-timing measurement (TAB5 and the sweep) attacks.
func kocherTarget() (mod, exp *big.Int) {
	mod = new(big.Int).Sub(new(big.Int).Lsh(big.NewInt(1), 61), big.NewInt(1))
	return mod, big.NewInt(0xB6D5)
}

// KocherRecovers mounts the Kocher timing attack with the given sample
// collector (square-and-multiply vs Montgomery ladder) on the shared
// 61-bit modexp victim and reports whether the exponent was recovered
// from n timings. TAB5 and the sweep's kocher-timing scenario measure
// exactly this, from this one definition, so their victims cannot drift
// apart.
func KocherRecovers(collect func(exp, mod *big.Int, n int, rng *rand.Rand) []physical.TimingSample, n int, rng *rand.Rand) bool {
	mod, exp := kocherTarget()
	rec := physical.KocherTiming(collect(exp, mod, n, rng), mod, exp.BitLen())
	return rec.Cmp(exp) == 0
}

// aesTracePoints is the per-trace sample count of the AES victims (160
// S-box leaks), used to pre-reserve arena capacity; jitter can push a
// trace past it, which only costs one backing growth.
const aesTracePoints = 160

// collectTraces runs a fixed-budget power-trace campaign on the cell's
// arena: collect env.Samples traces, analyze with the batched kernels.
func collectTraces(env *Env, sigma float64, analyze func(*power.Arena) [16]byte) (got int, err error) {
	v, err := env.PowerAESVictim()
	if err != nil {
		return 0, err
	}
	a := env.TraceArena()
	a.Grow(env.Samples, aesTracePoints)
	physical.CollectArena(a, v, env.PowerProbe(sigma, 1), env.Samples, env.RNG)
	return physical.CorrectBytes(analyze(a), VictimKey()), nil
}

// seqTraces drives a cumulative power-trace attack (DPA, CPA) through
// the plan's checkpoint ladder: extend one trace arena, regrade the
// recovered key bytes, stop on a full (>= 14/16) recovery. A pass that
// drains the plan has collected exactly the fixed-budget trace set. The
// arena is worker-pooled scratch, so escalation passes extend and
// regrade without allocating.
func seqTraces(env *Env, plan *stats.Plan, sigma float64, analyze func(*power.Arena) [16]byte) (got, traces int, err error) {
	v, err := env.PowerAESVictim()
	if err != nil {
		return 0, 0, err
	}
	probe := env.PowerProbe(sigma, 1)
	a := env.TraceArena()
	done := 0
	for {
		n, ok := plan.Next()
		if !ok {
			break
		}
		a.Grow(n-done, aesTracePoints)
		physical.ExtendArena(a, v, probe, n-done, env.RNG)
		done = n
		got = physical.CorrectBytes(analyze(a), VictimKey())
		plan.Grade(got >= 14)
	}
	return got, done, nil
}

func physicalScenarios() []Scenario {
	return []Scenario{
		&Spec{
			ID: "kocher-timing", In: FamilyPhysical, Section: "5",
			Summary: "Kocher timing attack on square-and-multiply RSA; needs >= 600 timings to vote exponent bits",
			// The bit-voting needs a floor of timings to be reliable;
			// the sweep raises the cell's budget to it.
			Floor: 600,
			Run: func(env *Env) (Outcome, error) {
				ok := KocherRecovers(physical.CollectTimingSamples, env.Samples, env.RNG)
				return Outcome{
					Rows:    Cell("kocher-timing", env.Arch, fmt.Sprintf("%d timings", env.Samples), LeakIf(ok)),
					Verdict: LeakIf(ok),
					Detail:  "Kocher timing attack on square-and-multiply RSA",
				}, nil
			},
			RunSeq: func(env *Env, plan *stats.Plan) (Outcome, error) {
				mod, exp := kocherTarget()
				var samples []physical.TimingSample
				ok, done := false, 0
				for {
					n, more := plan.Next()
					if !more {
						break
					}
					samples = physical.ExtendTimingSamples(samples, exp, mod, n-done, env.RNG)
					done = n
					ok = physical.KocherTiming(samples, mod, exp.BitLen()).Cmp(exp) == 0
					plan.Grade(ok)
				}
				return Outcome{
					Rows:    Cell("kocher-timing", env.Arch, fmt.Sprintf("%d timings", done), LeakIf(ok)),
					Verdict: LeakIf(ok),
					Detail:  "Kocher timing attack on square-and-multiply RSA",
				}, nil
			},
		},
		&Spec{
			ID: "dpa", In: FamilyPhysical, Section: "5",
			Summary: "Differential power analysis (difference of means) on unprotected AES traces",
			// The difference-of-means statistic needs far more traces
			// than CPA's correlation to separate the key hypotheses.
			Floor: 1500,
			Run: func(env *Env) (Outcome, error) {
				// masked-aes and clock-jitter (§5) act here: the victim may
				// be first-order masked, and the probe may carry hiding
				// jitter.
				got, err := collectTraces(env, 0.5, physical.DPAKeyArena)
				if err != nil {
					return Outcome{}, err
				}
				return Outcome{
					Rows:    Cell("dpa", env.Arch, fmt.Sprintf("%d/16 key bytes @ %d traces", got, env.Samples), LeakIf(got >= 14)),
					Metrics: map[string]float64{"key_bytes": float64(got)},
					Verdict: LeakIf(got >= 14),
					Detail:  "difference-of-means DPA vs " + env.DefenseLabel(),
				}, nil
			},
			RunSeq: func(env *Env, plan *stats.Plan) (Outcome, error) {
				got, traces, err := seqTraces(env, plan, 0.5, physical.DPAKeyArena)
				if err != nil {
					return Outcome{}, err
				}
				return Outcome{
					Rows:    Cell("dpa", env.Arch, fmt.Sprintf("%d/16 key bytes @ %d traces", got, traces), LeakIf(got >= 14)),
					Metrics: map[string]float64{"key_bytes": float64(got)},
					Verdict: LeakIf(got >= 14),
					Detail:  "difference-of-means DPA vs " + env.DefenseLabel(),
				}, nil
			},
		},
		&Spec{
			ID: "cpa", In: FamilyPhysical, Section: "5",
			Summary: "Correlation power analysis (Pearson, Hamming-weight model) on unprotected AES traces",
			Run: func(env *Env) (Outcome, error) {
				// Same countermeasure seams as dpa: masked victim and/or
				// jittered traces.
				got, err := collectTraces(env, 0.8, physical.CPAKeyArena)
				if err != nil {
					return Outcome{}, err
				}
				return Outcome{
					Rows:    Cell("cpa", env.Arch, fmt.Sprintf("%d/16 key bytes @ %d traces", got, env.Samples), LeakIf(got >= 14)),
					Metrics: map[string]float64{"key_bytes": float64(got)},
					Verdict: LeakIf(got >= 14),
					Detail:  "close-proximity CPA vs " + env.DefenseLabel(),
				}, nil
			},
			RunSeq: func(env *Env, plan *stats.Plan) (Outcome, error) {
				got, traces, err := seqTraces(env, plan, 0.8, physical.CPAKeyArena)
				if err != nil {
					return Outcome{}, err
				}
				return Outcome{
					Rows:    Cell("cpa", env.Arch, fmt.Sprintf("%d/16 key bytes @ %d traces", got, traces), LeakIf(got >= 14)),
					Metrics: map[string]float64{"key_bytes": float64(got)},
					Verdict: LeakIf(got >= 14),
					Detail:  "close-proximity CPA vs " + env.DefenseLabel(),
				}, nil
			},
		},
		&Spec{
			ID: "dfa-piret-quisquater", In: FamilyPhysical, Section: "5", Single: true,
			Summary: "Piret-Quisquater differential fault attack: full AES key from a handful of faulty ciphertexts",
			Run: func(env *Env) (Outcome, error) {
				oracle, err := physical.NewFaultOracle(VictimKey())
				if err != nil {
					return Outcome{}, err
				}
				got, faults, err := physical.PiretQuisquater(oracle, 2)
				if err != nil {
					return Outcome{}, err
				}
				ok := physical.CorrectBytes(got, VictimKey()) == 16
				return Outcome{
					Rows:    Cell("dfa-piret-quisquater", env.Arch, fmt.Sprintf("%d faulty ciphertexts", faults), LeakIf(ok)),
					Metrics: map[string]float64{"faulty_ciphertexts": float64(faults)},
					Verdict: LeakIf(ok),
					Detail:  "round-9 fault injection and differential analysis on the device's AES",
				}, nil
			},
		},
		&Spec{
			ID: "bellcore", In: FamilyPhysical, Section: "5", Single: true,
			Summary: "Bellcore RSA-CRT fault attack: one faulty half-exponentiation factors the modulus",
			Run: func(env *Env) (Outcome, error) {
				// Deterministic keygen from the job RNG — crypto/rsa's
				// generator defeats reproducibility on purpose.
				rsaKey, err := softcrypto.GenerateRSAFrom(env.RNG, 512)
				if err != nil {
					return Outcome{}, err
				}
				msg := big.NewInt(0xFEEDC0FFEE)
				fault := &softcrypto.CRTFault{Half: 0, XORMask: 2}
				if env.DefenseConfig().CRTCheck {
					// crt-check (§5): verify-before-release suppresses the
					// faulty signature the attack needs. Should the check
					// ever release it (a fault model the verification does
					// not catch), the attack is actually mounted on the
					// released signature rather than asserted.
					good, _ := rsaKey.SignCRTChecked(msg, nil)
					bad, released := rsaKey.SignCRTChecked(msg, fault)
					if released && good != nil {
						_, _, ok := physical.Bellcore(rsaKey.N, good, bad)
						return Outcome{
							Rows:    Cell("bellcore", env.Arch, "faulty signature released past the check", LeakIf(ok)),
							Verdict: LeakIf(ok),
							Detail:  "RSA-CRT check failed to suppress the faulty signature",
						}, nil
					}
					return Outcome{
						Rows:    Cell("bellcore", env.Arch, "faulty signature suppressed", LeakIf(false)),
						Verdict: LeakIf(false),
						Detail:  "RSA-CRT verify-before-release withheld the faulty signature",
					}, nil
				}
				good := rsaKey.SignCRT(msg, nil)
				bad := rsaKey.SignCRT(msg, fault)
				_, _, ok := physical.Bellcore(rsaKey.N, good, bad)
				return Outcome{
					Rows:    Cell("bellcore", env.Arch, "1 faulty signature", LeakIf(ok)),
					Verdict: LeakIf(ok),
					Detail:  "gcd of (good - bad) signatures with the modulus factors it",
				}, nil
			},
		},
		&Spec{
			ID: "clkscrew", In: FamilyPhysical, Section: "5", Single: true,
			Summary: "CLKSCREW: overclock via the kernel-reachable DVFS regulator to fault the TrustZone secure world",
			Applies: mobileOnlyDVFS,
			Run: func(env *Env) (Outcome, error) {
				jitter := env.DefenseConfig().ClockJitter
				// An unlucky fault batch can leave the campaign's DFA
				// ambiguous; like a real attacker, collect a fresh batch
				// (deterministically derived from the job seed) and retry.
				// Under clock-jitter every campaign is expected to starve —
				// that is the mitigation, so one campaign settles the cell
				// instead of burning 8 full fault budgets.
				attempts := int64(8)
				if jitter {
					attempts = 1
				}
				var ck *physical.CLKSCREWResult
				var err error
				for attempt := int64(0); attempt < attempts; attempt++ {
					ck, err = physical.CLKSCREWDefended(env.Seed+attempt*0x9E3779B9, jitter)
					if err == nil {
						break
					}
				}
				if err != nil {
					if jitter && ck != nil {
						// clock-jitter (§5): displaced faults fail the DFA's
						// fault model and the campaign starves — that IS the
						// mitigation, not an experiment error.
						return Outcome{
							Rows: Cell("clkscrew", env.Arch,
								fmt.Sprintf("0 usable faults in %d invocations", ck.Invocations), LeakIf(false)),
							Metrics: map[string]float64{"overclock_mhz": float64(ck.OverclockMHz), "invocations": float64(ck.Invocations)},
							Verdict: LeakIf(false),
							Detail:  "CLKSCREW vs clock-jitter: injected faults miss the targeted round",
						}, nil
					}
					return Outcome{}, err
				}
				return Outcome{
					Rows: Cell("clkscrew", env.Arch,
						fmt.Sprintf("OC to %d MHz, %d invocations", ck.OverclockMHz, ck.Invocations), LeakIf(ck.Success)),
					Metrics: map[string]float64{"overclock_mhz": float64(ck.OverclockMHz), "invocations": float64(ck.Invocations)},
					Verdict: LeakIf(ck.Success),
					Detail:  "CLKSCREW fault injection via the DVFS regulator",
				}, nil
			},
		},
	}
}
