package scenario

import (
	"fmt"
	"math/rand"
	"strings"

	"github.com/intrust-sim/intrust/internal/attack/cachesca"
	"github.com/intrust-sim/intrust/internal/attack/physical"
	"github.com/intrust-sim/intrust/internal/cpu"
	"github.com/intrust-sim/intrust/internal/defense"
	"github.com/intrust-sim/intrust/internal/engine"
	"github.com/intrust-sim/intrust/internal/platform"
	"github.com/intrust-sim/intrust/internal/power"
	"github.com/intrust-sim/intrust/internal/tee/sgx"
)

// Architectures lists the sweepable architecture keys in the paper's
// Section 3 order (high-end to embedded). The canonical list lives in
// internal/platform so the scenario and defense registries share one
// architecture axis.
var Architectures = platform.Architectures

// Platform classes as used in applicability reasoning and experiment
// metadata (Figure 1's three columns).
const (
	// ClassServer covers servers and desktop computers.
	ClassServer = "server"
	// ClassMobile covers smartphones and tablets.
	ClassMobile = "mobile"
	// ClassEmbedded covers low-energy IoT and embedded devices.
	ClassEmbedded = "embedded"
)

// ClassOf returns an architecture's platform class, or "" for unknown
// architectures.
func ClassOf(arch string) string {
	c, ok := platform.ArchClass(arch)
	if !ok {
		return ""
	}
	switch c {
	case platform.ClassServer:
		return ClassServer
	case platform.ClassMobile:
		return ClassMobile
	}
	return ClassEmbedded
}

// KnownArchitecture reports whether arch is one of the eight surveyed
// architectures.
func KnownArchitecture(arch string) bool { return ClassOf(arch) != "" }

// Shared victim geometry: the T-table AES victim lives in domain 5 with
// its tables at 0x40000 (0x2000 bytes: four T-tables plus the S-box); the
// cache attacker observes from domain 9. The TLB channel uses ASIDs 1
// (victim) and 2 (attacker).
const (
	// VictimDomain is the cache security domain of the AES victim.
	VictimDomain = 5
	// AttackerDomain is the cache security domain the attacker probes
	// from.
	AttackerDomain = 9
	// VictimTableBase is the simulated address of the victim's T0 table.
	VictimTableBase = 0x40000
	// VictimTableSize bounds the victim's table range (T0–T3 + S-box).
	VictimTableSize = 0x2000
	// VictimASID is the victim's TLB address-space identifier.
	VictimASID = 1
	// AttackerASID is the attacker's TLB address-space identifier.
	AttackerASID = 2
)

// VictimKey returns the AES key every sweep victim is provisioned with —
// fixed so recovery can be graded.
func VictimKey() []byte { return []byte("sweep aes key 16") }

// Env is the typed environment every scenario mounts from. It packages
// what the bespoke attack signatures used to demand ad hoc: the target
// architecture and its platform class, the matching CPU feature set,
// victim constructors wired through the cell's defense configuration,
// the per-job deterministic RNG and seed, and the sample budget.
//
// The defense configuration is the third sweep axis (paper §4.1/§5:
// every mitigation buys some cells and leaves others broken). NewEnv
// resolves an architecture's stock defenses from the defense registry —
// the wiring that used to be a hard-coded switch in NewPlatform —
// while NewEnvWithDefenses mounts any explicit mitigation set.
type Env struct {
	// Arch is the target architecture key (one of Architectures).
	Arch string
	// Class is the architecture's platform class (ClassServer,
	// ClassMobile or ClassEmbedded).
	Class string
	// Samples is the sample budget (traces, timings, probe rounds).
	Samples int
	// Seed is the job's derived seed, for APIs that take a seed rather
	// than a *rand.Rand (e.g. physical.CLKSCREW).
	Seed int64
	// RNG is the job-private deterministic random source. Scenarios
	// must draw all randomness from it (never the global source).
	RNG *rand.Rand
	// Defenses are the mitigations in effect for this cell, already
	// validated as applicable to Arch.
	Defenses []defense.Defense

	cfg *defense.Config

	// pool recycles the cell's platform across measurement passes: the
	// adaptive engine's escalation passes each mount the scenario afresh,
	// and rebuilding the whole hierarchy (the server LLC alone backs
	// 128Ki lines) per pass dwarfed the measurement on hard cells.
	// Batch shares the pointer, so every pass of one cell reuses one
	// platform; distinct cells (distinct Envs) never share.
	pool *platformPool

	// scratch, when bound, widens reuse from per-cell to per-worker:
	// NewPlatform pools platforms by class and TraceArena pools the
	// power-trace arena across every cell the worker executes. Reuse is
	// value-invisible (platform.Reset is pinned ≡ fresh; the arena is
	// Reset per cell), so a cell measures bit-identically with or
	// without a bound scratch — the determinism matrix test enforces it.
	scratch *engine.Scratch
}

// platformPool holds one reusable platform per cell. NewPlatform resets
// and re-configures the pooled instance instead of assembling a new one;
// that is safe because every scenario builds its platform at the top of a
// mount and abandons it when the mount returns, so at most one pass uses
// the platform at a time.
type platformPool struct {
	p *platform.Platform
}

// NewEnv builds the environment for one (architecture, job) pair with the
// architecture's stock defenses (the paper's §4.1 wiring, resolved from
// the defense registry). A nil rng is derived from seed; samples <= 0
// defaults to 256.
func NewEnv(arch string, samples int, seed int64, rng *rand.Rand) (*Env, error) {
	return NewEnvWithDefenses(arch, samples, seed, rng, defense.StockFor(arch))
}

// NewEnvWithDefenses builds the environment for one (architecture,
// defense set, job) triple. Every defense must be applicable to the
// architecture — the sweep reports non-applicable combinations as n/a
// cells before ever constructing an environment.
func NewEnvWithDefenses(arch string, samples int, seed int64, rng *rand.Rand, defenses []defense.Defense) (*Env, error) {
	class := ClassOf(arch)
	if class == "" {
		return nil, fmt.Errorf("scenario: unknown architecture %q", arch)
	}
	if samples <= 0 {
		samples = 256
	}
	if rng == nil {
		rng = rand.New(rand.NewSource(seed))
	}
	cfg, err := defense.NewConfig(arch, VictimDomain, AttackerDomain, VictimASID, AttackerASID, VictimTableBase, VictimTableSize)
	if err != nil {
		return nil, err
	}
	for _, d := range defenses {
		if ok, reason := d.AppliesTo(arch); !ok {
			return nil, fmt.Errorf("scenario: defense %s not applicable on %s: %s", d.Name(), arch, reason)
		}
		d.Configure(cfg)
	}
	return &Env{Arch: arch, Class: class, Samples: samples, Seed: seed, RNG: rng,
		Defenses: defenses, cfg: cfg, pool: &platformPool{}}, nil
}

// Batch derives the environment for sequential-sampling batch i of this
// cell: the same architecture, class and resolved defense wiring, a
// budget-sized sample allowance, and a batch-private RNG. Batch 0 runs
// under the job seed itself — so an adaptive schedule whose first batch
// carries the full budget reproduces the fixed-budget measurement
// bit-for-bit — and every later batch derives its seed from the job seed
// and the batch index alone. Stopping points therefore depend only on
// the job seed, never on engine parallelism or scheduling order.
func (e *Env) Batch(i, budget int) *Env {
	if budget <= 0 {
		budget = e.Samples
	}
	seed := e.Seed
	if i > 0 {
		seed = engine.DeriveSeed(e.Seed, fmt.Sprintf("batch/%d", i))
	}
	b := *e
	b.Samples = budget
	b.Seed = seed
	b.RNG = rand.New(rand.NewSource(seed))
	return &b
}

// BindScratch attaches the executing worker's scratch store, enabling
// cross-cell reuse of platforms and trace arenas. The sweep binds it
// from engine.Ctx; scenarios mounted without one (tests, the serve
// layer's RunOne cells) keep the per-cell pool behavior.
func (e *Env) BindScratch(s *engine.Scratch) { e.scratch = s }

// TraceArena returns the power-trace arena for this cell, reset empty.
// With a bound scratch the arena is worker-pooled: its quantized-sample
// backing, class-sum caches and input store persist from cell to cell,
// so steady-state trace collection and analysis never touch the heap.
func (e *Env) TraceArena() *power.Arena {
	const key = "scenario/power/arena"
	if a, ok := e.scratch.Get(key).(*power.Arena); ok {
		a.Reset()
		return a
	}
	a := power.NewArena(16)
	e.scratch.Put(key, a)
	return a
}

// DefenseConfig exposes the cell's resolved defense wiring — the knob set
// scenarios consult when a mitigation lives in victim construction or
// attack parameters rather than platform assembly.
func (e *Env) DefenseConfig() *defense.Config { return e.cfg }

// DefenseLabel names the cell's mitigation set for detail lines and table
// cells: "none", or the "+"-joined defense names. Deriving the label from
// the resolved defense values (never a parallel string table) is what
// keeps cell labels from drifting from the actual wiring.
func (e *Env) DefenseLabel() string {
	if len(e.Defenses) == 0 {
		return "none"
	}
	names := make([]string, len(e.Defenses))
	for i, d := range e.Defenses {
		names[i] = d.Name()
	}
	return strings.Join(names, "+")
}

// Features returns the CPU feature set of the environment's platform
// class.
func (e *Env) Features() cpu.Features {
	switch e.Class {
	case ClassServer:
		return cpu.HighEndFeatures()
	case ClassMobile:
		return cpu.MobileFeatures()
	default:
		return cpu.EmbeddedFeatures()
	}
}

// NewPlatform returns a platform of the architecture's class with the
// cell's defense configuration applied — the platform hooks the §4.1
// cache-isolation defenses installed via Configure. With the stock
// defense set this reproduces the paper's wiring (LLC way-partitioning on
// Sanctum, cache exclusion/coloring on Sanctuary, nothing on SGX or
// TrustZone) from registry metadata instead of the hard-coded
// per-architecture block this method used to carry.
//
// The first call assembles the platform; later calls on the same cell
// (the adaptive engine's escalation passes reach here through Batch,
// which shares the pool) reset the pooled instance back to its as-built
// microarchitectural state and re-apply the same configuration, which
// measures bit-identically to a fresh assembly without re-deriving the
// whole hierarchy. With a bound scratch the pool widens to the worker:
// platforms key by class, so consecutive cells of the same class on one
// worker share a hierarchy across the whole sweep (Reset ≡ fresh is
// what makes that value-invisible).
func (e *Env) NewPlatform() *platform.Platform {
	if p := e.pooledPlatform(); p != nil {
		p.Reset()
		e.cfg.Apply(p)
		return p
	}
	var p *platform.Platform
	switch e.Class {
	case ClassServer:
		p = platform.NewServer()
	case ClassMobile:
		p = platform.NewMobile()
	default:
		p = platform.NewEmbedded()
	}
	e.cfg.Apply(p)
	e.storePlatform(p)
	return p
}

// pooledPlatform returns the reusable platform for this cell, preferring
// the worker-scratch pool (keyed by class) over the per-cell pool.
func (e *Env) pooledPlatform() *platform.Platform {
	if p, ok := e.scratch.Get("scenario/platform/" + e.Class).(*platform.Platform); ok {
		return p
	}
	if e.pool != nil {
		return e.pool.p
	}
	return nil
}

// storePlatform records a freshly assembled platform in whichever pool
// is in effect.
func (e *Env) storePlatform(p *platform.Platform) {
	if e.scratch != nil {
		e.scratch.Put("scenario/platform/"+e.Class, p)
		return
	}
	if e.pool != nil {
		e.pool.p = p
	}
}

// AESVictim places the standard AES victim on the platform (at
// VictimTableBase, tagged VictimDomain) so cache scenarios observe it
// through whatever the cell's defense configuration mounted: the
// unprotected T-table implementation by default, the constant-time
// implementation under ct-aes (§4.1), with cache-hygiene on every
// enclave exit under flush-on-switch (§4.1).
func (e *Env) AESVictim(p *platform.Platform) (*cachesca.Victim, error) {
	hier := p.Core(0).Hier
	var v *cachesca.Victim
	var err error
	if e.cfg.ConstantTimeAES {
		v, err = cachesca.NewCTVictim(hier, VictimKey(), VictimDomain, VictimTableBase)
	} else {
		v, err = cachesca.NewVictim(hier, VictimKey(), VictimDomain, VictimTableBase)
	}
	if err != nil {
		return nil, err
	}
	if e.cfg.FlushOnSwitch {
		v.OnSwitch = hier.FlushAll
	}
	return v, nil
}

// PowerAESVictim builds the AES victim the §5 power-analysis scenarios
// trace: first-order masked under the masked-aes defense, unprotected
// otherwise. The mask generator is seeded from the job seed to keep the
// cell deterministic.
func (e *Env) PowerAESVictim() (physical.AESVictim, error) {
	if e.cfg.MaskedAES {
		return physical.NewMaskedAESVictim(VictimKey(), e.Seed^0x6d61736b)
	}
	return physical.NewUnprotectedAES(VictimKey())
}

// PowerProbe builds a measurement probe with the cell's hiding
// countermeasure applied: under clock-jitter (§5) up to TraceJitter
// random dummy operations per leaked value misalign the traces.
func (e *Env) PowerProbe(sigma float64, seed int64) *power.Probe {
	pr := power.PowerProbe(sigma, seed)
	pr.JitterMax = e.cfg.TraceJitter
	return pr
}

// SGX builds the SGX instance for scenarios that target the EPC
// (Foreshadow). It errors on any other architecture — callers should have
// reported n/a through Applicable instead.
func (e *Env) SGX() (*sgx.SGX, error) {
	if e.Arch != "sgx" {
		return nil, fmt.Errorf("scenario: SGX instance requested for architecture %q", e.Arch)
	}
	return sgx.New(platform.NewServer())
}
