package scenario

import (
	"fmt"
	"math/rand"

	"github.com/intrust-sim/intrust/internal/attack/cachesca"
	"github.com/intrust-sim/intrust/internal/cache"
	"github.com/intrust-sim/intrust/internal/cpu"
	"github.com/intrust-sim/intrust/internal/platform"
	"github.com/intrust-sim/intrust/internal/tee/sgx"
)

// Architectures lists the sweepable architecture keys in the paper's
// Section 3 order (high-end to embedded).
var Architectures = []string{
	"sgx", "sanctum", "trustzone", "sanctuary", "smart", "sancus", "trustlite", "tytan",
}

// Platform classes as used in applicability reasoning and experiment
// metadata.
const (
	ClassServer   = "server"
	ClassMobile   = "mobile"
	ClassEmbedded = "embedded"
)

// archClass maps an architecture key to its platform class.
var archClass = map[string]string{
	"sgx": ClassServer, "sanctum": ClassServer,
	"trustzone": ClassMobile, "sanctuary": ClassMobile,
	"smart": ClassEmbedded, "sancus": ClassEmbedded, "trustlite": ClassEmbedded, "tytan": ClassEmbedded,
}

// ClassOf returns an architecture's platform class, or "" for unknown
// architectures.
func ClassOf(arch string) string { return archClass[arch] }

// KnownArchitecture reports whether arch is one of the eight surveyed
// architectures.
func KnownArchitecture(arch string) bool { return archClass[arch] != "" }

// Shared victim geometry: the T-table AES victim lives in domain 5 with
// its tables at 0x40000; the cache attacker observes from domain 9.
const (
	VictimDomain    = 5
	AttackerDomain  = 9
	VictimTableBase = 0x40000
)

// VictimKey returns the AES key every sweep victim is provisioned with —
// fixed so recovery can be graded.
func VictimKey() []byte { return []byte("sweep aes key 16") }

// Env is the typed environment every scenario mounts from. It packages
// what the bespoke attack signatures used to demand ad hoc: the target
// architecture and its platform class, the matching CPU feature set,
// victim constructors wired to the architecture's defense configuration,
// the per-job deterministic RNG and seed, and the sample budget.
type Env struct {
	// Arch is the target architecture key (one of Architectures).
	Arch string
	// Class is the architecture's platform class (ClassServer,
	// ClassMobile or ClassEmbedded).
	Class string
	// Samples is the sample budget (traces, timings, probe rounds).
	Samples int
	// Seed is the job's derived seed, for APIs that take a seed rather
	// than a *rand.Rand (e.g. physical.CLKSCREW).
	Seed int64
	// RNG is the job-private deterministic random source. Scenarios
	// must draw all randomness from it (never the global source).
	RNG *rand.Rand
}

// NewEnv builds the environment for one (architecture, job) pair. A nil
// rng is derived from seed; samples <= 0 defaults to 256.
func NewEnv(arch string, samples int, seed int64, rng *rand.Rand) (*Env, error) {
	class := ClassOf(arch)
	if class == "" {
		return nil, fmt.Errorf("scenario: unknown architecture %q", arch)
	}
	if samples <= 0 {
		samples = 256
	}
	if rng == nil {
		rng = rand.New(rand.NewSource(seed))
	}
	return &Env{Arch: arch, Class: class, Samples: samples, Seed: seed, RNG: rng}, nil
}

// Features returns the CPU feature set of the environment's platform
// class.
func (e *Env) Features() cpu.Features {
	switch e.Class {
	case ClassServer:
		return cpu.HighEndFeatures()
	case ClassMobile:
		return cpu.MobileFeatures()
	default:
		return cpu.EmbeddedFeatures()
	}
}

// NewPlatform assembles a fresh platform of the architecture's class with
// the architecture's cache defense applied: LLC way-partitioning between
// the victim and attacker domains on Sanctum, exclusion of the victim
// table range from shared cache levels on Sanctuary, and no cache defense
// on SGX or TrustZone — exactly the paper's Section 4.1 defense matrix.
func (e *Env) NewPlatform() *platform.Platform {
	var p *platform.Platform
	switch e.Class {
	case ClassServer:
		p = platform.NewServer()
	case ClassMobile:
		p = platform.NewMobile()
	default:
		return platform.NewEmbedded()
	}
	switch e.Arch {
	case "sanctum":
		p.LLC.SetPartition(VictimDomain, 0x00ff)
		p.LLC.SetPartition(AttackerDomain, 0xff00)
	case "sanctuary":
		p.Core(0).Hier.Cacheability = func(addr uint32) cache.Level {
			if addr >= VictimTableBase && addr < VictimTableBase+0x2000 {
				return cache.LevelL1
			}
			return cache.LevelAll
		}
	}
	return p
}

// AESVictim places the standard T-table AES victim on the platform (at
// VictimTableBase, tagged VictimDomain) so cache scenarios observe it
// through whatever defense NewPlatform configured.
func (e *Env) AESVictim(p *platform.Platform) (*cachesca.Victim, error) {
	return cachesca.NewVictim(p.Core(0).Hier, VictimKey(), VictimDomain, VictimTableBase)
}

// SGX builds the SGX instance for scenarios that target the EPC
// (Foreshadow). It errors on any other architecture — callers should have
// reported n/a through Applicable instead.
func (e *Env) SGX() (*sgx.SGX, error) {
	if e.Arch != "sgx" {
		return nil, fmt.Errorf("scenario: SGX instance requested for architecture %q", e.Arch)
	}
	return sgx.New(platform.NewServer())
}
