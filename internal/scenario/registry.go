package scenario

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Registry is a concurrency-safe catalog of scenarios keyed by name.
// Lookups are case-insensitive; enumeration order is deterministic
// (family in FamilyOrder ranking, then name) regardless of registration
// order, so registry-driven sweeps keep the engine's reproducibility
// guarantees.
type Registry struct {
	mu     sync.RWMutex
	byName map[string]Scenario // key: lower-cased name
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]Scenario{}}
}

// Register adds a scenario. Names must be non-empty and unique (including
// case-insensitively — the CLI resolves user input case-insensitively, so
// two names differing only in case would be ambiguous), and the family
// must be non-empty.
func (r *Registry) Register(s Scenario) error {
	if s == nil {
		return fmt.Errorf("scenario: register nil scenario")
	}
	name := s.Name()
	if name == "" {
		return fmt.Errorf("scenario: register with empty name")
	}
	if s.Family() == "" {
		return fmt.Errorf("scenario: register %q with empty family", name)
	}
	key := strings.ToLower(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	if prev, dup := r.byName[key]; dup {
		return fmt.Errorf("scenario: name %q already registered (as %q)", name, prev.Name())
	}
	r.byName[key] = s
	return nil
}

// MustRegister is Register panicking on error — for init-time catalog
// registration, where a duplicate is a programming error.
func (r *Registry) MustRegister(s Scenario) {
	if err := r.Register(s); err != nil {
		panic(err)
	}
}

// Lookup finds a scenario by name, case-insensitively.
func (r *Registry) Lookup(name string) (Scenario, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s, ok := r.byName[strings.ToLower(name)]
	return s, ok
}

// All returns every registered scenario in deterministic order: families
// in FamilyOrder ranking (unknown families after, alphabetically), names
// alphabetically within a family.
func (r *Registry) All() []Scenario {
	r.mu.RLock()
	out := make([]Scenario, 0, len(r.byName))
	for _, s := range r.byName {
		out = append(out, s)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		fi, fj := out[i].Family(), out[j].Family()
		if fi != fj {
			ri, rj := familyRank(fi), familyRank(fj)
			if ri != rj {
				return ri < rj
			}
			return fi < fj
		}
		return out[i].Name() < out[j].Name()
	})
	return out
}

// ByFamily returns the registered scenarios of one family (matched
// case-insensitively), in All's deterministic order.
func (r *Registry) ByFamily(family string) []Scenario {
	var out []Scenario
	for _, s := range r.All() {
		if strings.EqualFold(s.Family(), family) {
			out = append(out, s)
		}
	}
	return out
}

// Families returns the distinct families with at least one registered
// scenario, in FamilyOrder ranking.
func (r *Registry) Families() []string {
	var out []string
	seen := map[string]bool{}
	for _, s := range r.All() {
		if !seen[s.Family()] {
			seen[s.Family()] = true
			out = append(out, s.Family())
		}
	}
	return out
}

// Names returns every registered scenario name in All's order.
func (r *Registry) Names() []string {
	all := r.All()
	out := make([]string, len(all))
	for i, s := range all {
		out[i] = s.Name()
	}
	return out
}

// Len reports the number of registered scenarios.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.byName)
}

func familyRank(f string) int {
	for i, known := range FamilyOrder {
		if known == f {
			return i
		}
	}
	return len(FamilyOrder)
}

// Default is the process-wide registry the catalog files self-register
// into and the sweep enumerates.
var Default = NewRegistry()

// Register adds a scenario to the default registry.
func Register(s Scenario) error { return Default.Register(s) }

// MustRegister adds a scenario to the default registry, panicking on
// error.
func MustRegister(s Scenario) { Default.MustRegister(s) }

// Lookup finds a scenario in the default registry, case-insensitively.
func Lookup(name string) (Scenario, bool) { return Default.Lookup(name) }

// All enumerates the default registry in deterministic order.
func All() []Scenario { return Default.All() }

// ByFamily enumerates one family of the default registry.
func ByFamily(family string) []Scenario { return Default.ByFamily(family) }

// Families lists the default registry's populated families.
func Families() []string { return Default.Families() }
