package fault

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

// A plane replays bit-identically: the same seed arms the same schedule
// at the same hit indices, run after run.
func TestScheduleDeterminism(t *testing.T) {
	record := func(seed int64) []bool {
		p := New(seed)
		p.Arm("disk.read", Spec{Prob: 0.4})
		out := make([]bool, 200)
		for i := range out {
			out[i] = p.Fire("disk.read")
		}
		return out
	}
	a, b := record(7), record(7)
	fires := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("hit %d diverged across identical runs", i)
		}
		if a[i] {
			fires++
		}
	}
	if fires == 0 || fires == len(a) {
		t.Fatalf("p=0.4 schedule fired %d/%d hits; want a proper subset", fires, len(a))
	}
	c := record(8)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("seeds 7 and 8 produced identical schedules")
	}
}

// Distinct points draw independent schedules: hitting one point never
// perturbs another's decisions — the property that makes concurrent
// chaos runs replayable.
func TestPointIndependence(t *testing.T) {
	solo := New(3)
	solo.Arm("a", Spec{Prob: 0.5})
	var want []bool
	for i := 0; i < 64; i++ {
		want = append(want, solo.Fire("a"))
	}

	mixed := New(3)
	mixed.Arm("a", Spec{Prob: 0.5})
	mixed.Arm("b", Spec{Prob: 0.5})
	for i := 0; i < 64; i++ {
		mixed.Fire("b") // interleave traffic on an unrelated point
		if got := mixed.Fire("a"); got != want[i] {
			t.Fatalf("hit %d of point a changed because point b saw traffic", i)
		}
	}
}

func TestAfterAndLimit(t *testing.T) {
	p := New(1)
	p.Arm("x", Spec{After: 3, Limit: 2})
	var fired []int
	for i := 0; i < 10; i++ {
		if p.Fire("x") {
			fired = append(fired, i)
		}
	}
	if len(fired) != 2 || fired[0] != 3 || fired[1] != 4 {
		t.Fatalf("After=3 Limit=2 fired at %v; want [3 4]", fired)
	}
	c := p.Counters()["x"]
	if c.Hits != 10 || c.Fires != 2 {
		t.Fatalf("counters = %+v; want 10 hits, 2 fires", c)
	}
}

func TestFailAndErrMessage(t *testing.T) {
	p := New(1)
	p.Arm("disk.write", Spec{})
	if err := p.Fail("disk.write"); err == nil || !strings.Contains(err.Error(), "injected disk.write") {
		t.Fatalf("default error = %v; want injected disk.write", err)
	}
	p.Arm("disk.write", Spec{Err: "EIO"})
	if err := p.Fail("disk.write"); err == nil || !strings.Contains(err.Error(), "EIO") {
		t.Fatalf("custom error = %v; want EIO", err)
	}
	if err := p.Fail("unarmed"); err != nil {
		t.Fatalf("unarmed point failed: %v", err)
	}
}

// A nil plane is a no-op at every seam: production code pays one nil
// check, never a guard.
func TestNilPlaneSafe(t *testing.T) {
	var p *Plane
	if p.Fire("x") || p.Fail("x") != nil || p.Counters() != nil || p.Names() != nil || p.Seed() != 0 {
		t.Fatal("nil plane reported a fault")
	}
	p.Arm("x", Spec{})
	p.Disarm("x")
	p.Reset()
	p.Stall(context.Background(), "x")
}

// Stall returns as soon as the context cancels: an injected compute
// stall can never outlive its request.
func TestStallRespectsContext(t *testing.T) {
	p := New(1)
	p.Arm("engine.stall", Spec{Delay: time.Minute})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		p.Stall(ctx, "engine.stall")
		close(done)
	}()
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Stall ignored context cancellation")
	}
}

func TestParse(t *testing.T) {
	p, err := Parse(42, "disk.write:p=1,limit=5;disk.read:p=0.25,err=EIO;engine.stall:delay=50ms,after=2")
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Names(); len(got) != 3 {
		t.Fatalf("parsed %v; want 3 points", got)
	}
	if p.Seed() != 42 {
		t.Fatalf("seed = %d; want 42", p.Seed())
	}
	if !p.Fire("disk.write") {
		t.Fatal("disk.write p=1 did not fire")
	}

	empty, err := Parse(0, "  ")
	if err != nil || len(empty.Names()) != 0 {
		t.Fatalf("empty plan: plane %v err %v", empty.Names(), err)
	}

	for _, bad := range []string{":p=1", "x:p", "x:p=2", "x:delay=abc", "x:zzz=1", "x:p="} {
		if _, err := Parse(0, bad); err == nil {
			t.Errorf("Parse(%q) accepted a malformed plan", bad)
		}
	}
}

// The plane is safe under concurrent hits, arms and snapshots.
func TestConcurrentHits(t *testing.T) {
	p := New(9)
	p.Arm("x", Spec{Prob: 0.5})
	p.Arm("y", Spec{Limit: 10})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				p.Fire("x")
				p.Fail("y")
				p.Counters()
			}
		}()
	}
	wg.Wait()
	c := p.Counters()
	if c["x"].Hits != 1600 || c["y"].Hits != 1600 {
		t.Fatalf("counters = %+v; want 1600 hits each", c)
	}
	if c["y"].Fires != 10 {
		t.Fatalf("limit 10 point fired %d times under concurrency", c["y"].Fires)
	}
}
