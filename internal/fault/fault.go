// Package fault is the deterministic fault-injection plane: a
// dependency-free registry of named failure points (disk IO errors and
// latency, at-rest envelope corruption, engine compute stalls and
// panics, listener-level connection drops) that production code probes
// through near-zero-cost hook seams and chaos tests arm with seeded
// schedules.
//
// Determinism is the design center. Every decision at a point is a pure
// function of (plane seed, point name, hit index): hit h of point p
// fires iff a hash-derived uniform draw under the plane's seed falls
// below the armed probability. No shared RNG stream exists, so
// concurrent points never perturb each other's schedules and a chaos
// run replays bit-identically — the same seed arms the same faults at
// the same hit indices, under any goroutine interleaving of distinct
// points.
//
// The plane is nil-safe: every method on a nil *Plane is a no-op that
// reports "no fault", so production seams cost one nil check when chaos
// is disarmed and packages can hold an optional *Plane without guards.
//
// The point catalog (names are a convention between the seams and the
// chaos suites, not an enum):
//
//	disk.read      IO error reading a persistent-cache entry (+latency)
//	disk.write     IO error persisting a write-behind entry (+latency)
//	disk.corrupt   at-rest envelope corruption (a flipped byte before
//	               decode, exercising the authenticate-and-quarantine
//	               path)
//	engine.stall   compute stall before a cell runs (latency only;
//	               context-aware, so cancellation still wins)
//	engine.panic   panic inside a cell's compute (confined by the
//	               engine's per-job recover)
//	listener.drop  accepted connection closed before a byte is served
package fault

import (
	"context"
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Spec configures one armed fault point. The zero value fires on every
// hit with no delay and a generic injected error.
type Spec struct {
	// Prob is the per-hit fire probability; <= 0 or >= 1 fires always.
	Prob float64
	// After skips the first After hits before the schedule arms.
	After int
	// Limit caps the total fires (0 = unlimited) — e.g. "fail exactly
	// twice, then heal", the breaker-recovery shape.
	Limit int
	// Delay is injected latency applied on every fire (alone for
	// stall-type points, alongside the error for IO points).
	Delay time.Duration
	// Err is the injected error message; "" selects
	// "fault: injected <name>".
	Err string
}

// armed is one point's runtime state: the spec plus its monotone hit
// and fire counters.
type armed struct {
	spec  Spec
	hits  atomic.Int64
	fires atomic.Int64
}

// Plane is a set of armed fault points under one seed. It is safe for
// concurrent use; arming and disarming are expected at test/boot
// setup, hits on the hot path.
type Plane struct {
	seed   int64
	mu     sync.RWMutex
	points map[string]*armed
}

// New returns an empty plane whose schedules derive from seed.
func New(seed int64) *Plane {
	return &Plane{seed: seed, points: make(map[string]*armed)}
}

// Seed returns the plane's schedule seed.
func (p *Plane) Seed() int64 {
	if p == nil {
		return 0
	}
	return p.seed
}

// Arm installs (or replaces) the spec for a named point, resetting its
// counters.
func (p *Plane) Arm(name string, s Spec) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.points[name] = &armed{spec: s}
}

// Disarm removes a point; later hits report no fault.
func (p *Plane) Disarm(name string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.points, name)
}

// Reset disarms every point.
func (p *Plane) Reset() {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.points = make(map[string]*armed)
}

// decide is the deterministic core: record one hit at name and report
// whether it fires, returning the armed spec when it does.
func (p *Plane) decide(name string) (Spec, bool) {
	if p == nil {
		return Spec{}, false
	}
	p.mu.RLock()
	a := p.points[name]
	p.mu.RUnlock()
	if a == nil {
		return Spec{}, false
	}
	h := a.hits.Add(1) - 1 // 0-based hit index
	if h < int64(a.spec.After) {
		return Spec{}, false
	}
	if a.spec.Prob > 0 && a.spec.Prob < 1 && draw(p.seed, name, h) >= a.spec.Prob {
		return Spec{}, false
	}
	if a.spec.Limit > 0 {
		// Claim a fire slot atomically; losers past the limit pass clean.
		for {
			n := a.fires.Load()
			if n >= int64(a.spec.Limit) {
				return Spec{}, false
			}
			if a.fires.CompareAndSwap(n, n+1) {
				return a.spec, true
			}
		}
	}
	a.fires.Add(1)
	return a.spec, true
}

// draw maps (seed, name, hit) to a uniform in [0,1) via FNV-1a — the
// stateless per-hit schedule that makes runs replayable without a
// shared RNG stream.
func draw(seed int64, name string, hit int64) float64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	var b [16]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(uint64(seed) >> (8 * i))
		b[8+i] = byte(uint64(hit) >> (8 * i))
	}
	h.Write(b[:])
	return float64(h.Sum64()>>11) / float64(1<<53)
}

// Fire records one hit and reports whether the point fires, applying
// any armed delay. The boolean form for faults that are not errors
// (corruption, connection drops).
func (p *Plane) Fire(name string) bool {
	s, ok := p.decide(name)
	if ok && s.Delay > 0 {
		time.Sleep(s.Delay)
	}
	return ok
}

// Fail records one hit and returns the injected error when the point
// fires (nil otherwise), applying any armed delay first — the seam
// shape for IO-style fault points.
func (p *Plane) Fail(name string) error {
	s, ok := p.decide(name)
	if !ok {
		return nil
	}
	if s.Delay > 0 {
		time.Sleep(s.Delay)
	}
	if s.Err != "" {
		return fmt.Errorf("fault: %s", s.Err)
	}
	return fmt.Errorf("fault: injected %s", name)
}

// Stall records one hit and, when the point fires, sleeps the armed
// delay or until ctx is done, whichever comes first — the seam shape
// for compute-stall points, where cancellation must still win.
func (p *Plane) Stall(ctx context.Context, name string) {
	s, ok := p.decide(name)
	if !ok || s.Delay <= 0 {
		return
	}
	t := time.NewTimer(s.Delay)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// Count is one point's traffic snapshot.
type Count struct {
	// Hits is how many times the seam probed the point.
	Hits int64
	// Fires is how many of those hits injected the fault.
	Fires int64
}

// Counters snapshots every armed point's hit/fire accounting, keyed by
// point name.
func (p *Plane) Counters() map[string]Count {
	if p == nil {
		return nil
	}
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := make(map[string]Count, len(p.points))
	for name, a := range p.points {
		out[name] = Count{Hits: a.hits.Load(), Fires: a.fires.Load()}
	}
	return out
}

// Names returns the armed point names, sorted (for deterministic
// metrics rendering).
func (p *Plane) Names() []string {
	if p == nil {
		return nil
	}
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := make([]string, 0, len(p.points))
	for name := range p.points {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Parse builds a plane from a textual arming plan — the CLI's -fault
// flag and the chaos CI jobs speak this format:
//
//	point[:key=value[,key=value...]][;point...]
//
// Keys: p (fire probability, default 1), after (hits skipped), limit
// (max fires), delay (Go duration), err (injected message). Example:
//
//	disk.write:p=1,limit=5;disk.read:p=0.25;engine.stall:delay=50ms
//
// An empty plan returns a plane with no armed points.
func Parse(seed int64, plan string) (*Plane, error) {
	p := New(seed)
	for _, tok := range strings.Split(plan, ";") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		name, opts, _ := strings.Cut(tok, ":")
		name = strings.TrimSpace(name)
		if name == "" {
			return nil, fmt.Errorf("fault: empty point name in %q", tok)
		}
		var s Spec
		if opts != "" {
			for _, kv := range strings.Split(opts, ",") {
				k, v, ok := strings.Cut(kv, "=")
				k, v = strings.TrimSpace(k), strings.TrimSpace(v)
				if !ok || v == "" {
					return nil, fmt.Errorf("fault: %s: want key=value, got %q", name, kv)
				}
				var err error
				switch k {
				case "p":
					s.Prob, err = strconv.ParseFloat(v, 64)
					if err == nil && (s.Prob < 0 || s.Prob > 1) {
						err = fmt.Errorf("probability %v outside [0,1]", s.Prob)
					}
				case "after":
					s.After, err = strconv.Atoi(v)
				case "limit":
					s.Limit, err = strconv.Atoi(v)
				case "delay":
					s.Delay, err = time.ParseDuration(v)
				case "err":
					s.Err = v
				default:
					err = fmt.Errorf("unknown key (want p|after|limit|delay|err)")
				}
				if err != nil {
					return nil, fmt.Errorf("fault: %s: %s: %v", name, k, err)
				}
			}
		}
		p.Arm(name, s)
	}
	return p, nil
}
