package perf

import (
	"strings"
	"testing"
)

// shapeFile builds a two-entry artifact for one machine shape with the
// given per-config serial and wide (GOMAXPROCS=8) throughputs.
func shapeFile(numCPU int, serial, wide map[string]float64) *File {
	mk := func(gmp int, cps map[string]float64) *Report {
		r := &Report{Schema: Schema, GoVersion: "go1.24.0", NumCPU: numCPU, GOMAXPROCS: gmp, Parallel: gmp}
		for name, v := range cps {
			r.Configs = append(r.Configs, Result{Name: name, CellsPerSec: v})
		}
		return r
	}
	var f File
	f.Upsert(mk(1, serial))
	f.Upsert(mk(8, wide))
	return &f
}

// TestScalingXDerivation pins the metric itself: per-config wide/serial
// cells-per-second ratios, grouped by machine shape.
func TestScalingXDerivation(t *testing.T) {
	f := shapeFile(1,
		map[string]float64{"fixed": 50, "adaptive": 40, "serial-only": 10},
		map[string]float64{"fixed": 60, "adaptive": 44, "wide-only": 10})
	scal, err := f.ScalingX()
	if err != nil {
		t.Fatal(err)
	}
	if len(scal) != 1 {
		t.Fatalf("got %d machine shapes, want 1", len(scal))
	}
	s := scal[0]
	if s.GoVersion != "go1.24.0" || s.NumCPU != 1 {
		t.Errorf("shape = %s numcpu=%d", s.GoVersion, s.NumCPU)
	}
	if got := s.Names(); len(got) != 2 || got[0] != "adaptive" || got[1] != "fixed" {
		t.Fatalf("shared configs = %v, want [adaptive fixed]", got)
	}
	if x := s.X["fixed"]; x != 60.0/50.0 {
		t.Errorf("fixed scaling_x = %v, want 1.2", x)
	}
	if x := s.X["adaptive"]; x != 44.0/40.0 {
		t.Errorf("adaptive scaling_x = %v, want 1.1", x)
	}
}

// TestScalingXRequiresThePair pins the loud-disarm property: an
// artifact missing either side of the 1/8 comparison fails instead of
// silently passing the gate.
func TestScalingXRequiresThePair(t *testing.T) {
	var f File
	f.Upsert(&Report{Schema: Schema, GoVersion: "go1.24.0", NumCPU: 1, GOMAXPROCS: 1, Parallel: 1,
		Configs: []Result{{Name: "fixed", CellsPerSec: 50}}})
	if _, err := f.ScalingX(); err == nil {
		t.Error("artifact without a GOMAXPROCS=8 entry derived a scaling metric")
	}
	// Entries on different machine shapes must not pair up either.
	f.Upsert(&Report{Schema: Schema, GoVersion: "go1.24.0", NumCPU: 8, GOMAXPROCS: 8, Parallel: 8,
		Configs: []Result{{Name: "fixed", CellsPerSec: 400}}})
	if _, err := f.ScalingX(); err == nil {
		t.Error("a 1-core serial entry paired with an 8-core wide entry")
	}
}

// TestScalingFloorByShape pins the calibration: 1-core shapes bound the
// oversubscription tax at 10% (floor 0.9 — 8 threads on one core
// cannot beat serial, but they must not collapse); multi-core shapes
// below 8 must beat serial outright (floor 1.0); real 8-core shapes
// must earn parallel speedup (floor 1.5).
func TestScalingFloorByShape(t *testing.T) {
	one := Scaling{NumCPU: 1}
	if got := one.Floor(); got != 0.9 {
		t.Errorf("1-core floor = %v, want 0.9", got)
	}
	four := Scaling{NumCPU: 4}
	if got := four.Floor(); got != 1.0 {
		t.Errorf("4-core floor = %v, want 1.0", got)
	}
	eight := Scaling{NumCPU: 8}
	if got := eight.Floor(); got != 1.5 {
		t.Errorf("8-core floor = %v, want 1.5", got)
	}

	// A 1-core shape collapsing under oversubscription fails...
	f := shapeFile(1, map[string]float64{"adaptive": 67.4}, map[string]float64{"adaptive": 51.1})
	scal, err := f.ScalingX()
	if err != nil {
		t.Fatal(err)
	}
	if err := scal[0].Check(); err == nil {
		t.Error("the pinned-out oversubscription collapse (0.76x) passed the gate")
	} else if !strings.Contains(err.Error(), "scaling_x") {
		t.Errorf("failure does not name the metric: %v", err)
	}
	// ...a bounded 4% tax on one core passes...
	f = shapeFile(1, map[string]float64{"adaptive": 50}, map[string]float64{"adaptive": 48})
	if scal, err = f.ScalingX(); err != nil {
		t.Fatal(err)
	}
	if err := scal[0].Check(); err != nil {
		t.Errorf("a 4%% oversubscription tax failed the 1-core floor: %v", err)
	}
	// ...and a 1.2x ratio that would pass on 1 core fails on 8 cores.
	f = shapeFile(8, map[string]float64{"fixed": 50}, map[string]float64{"fixed": 60})
	if scal, err = f.ScalingX(); err != nil {
		t.Fatal(err)
	}
	if err := scal[0].Check(); err == nil {
		t.Error("1.2x passed the 1.5x floor on an 8-core shape")
	}

	// An empty shared-config set is a failure, not a vacuous pass.
	empty := Scaling{GoVersion: "go1.24.0", NumCPU: 1, X: map[string]float64{}}
	if err := empty.Check(); err == nil {
		t.Error("empty metric passed")
	}
}

// TestCheckedInScalingGate is the CI gate on the committed artifact:
// BENCH_sweep.json must carry the GOMAXPROCS=1/8 pair for at least one
// machine shape, and on every shape the wide entry must hold the
// shape's floor over the serial entry for every configuration. This is
// what makes the multi-core claim a regression test instead of a
// comment: the artifact cannot be refreshed into a state where the
// 8-worker sweep falls below its machine shape's floor.
func TestCheckedInScalingGate(t *testing.T) {
	f, err := ReadBaseline("../../BENCH_sweep.json")
	if err != nil {
		t.Fatalf("checked-in artifact unreadable: %v", err)
	}
	scal, err := f.ScalingX()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range scal {
		for _, name := range s.Names() {
			t.Logf("%s numcpu=%d %s: scaling_x %.3f (floor %.2f)", s.GoVersion, s.NumCPU, name, s.X[name], s.Floor())
		}
		if err := s.Check(); err != nil {
			t.Error(err)
		}
	}
}
