package perf

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// TestReadBaselineLegacy pins the migration path: a schema-1 artifact (a
// bare Report) reads as a one-environment container, so checked-in
// baselines written before the container existed keep arming the gate.
func TestReadBaselineLegacy(t *testing.T) {
	rep := &Report{Schema: Schema, GoVersion: "go1.24.0", GOMAXPROCS: 1, Parallel: 1,
		Configs: []Result{{Name: "grid", CellsPerSec: 100}}}
	path := filepath.Join(t.TempDir(), "legacy.json")
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := ReadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if f.Schema != FileSchema || len(f.Environments) != 1 {
		t.Fatalf("legacy wrap = schema %d, %d environments", f.Schema, len(f.Environments))
	}
	if got := f.Match(rep); got == nil || got.Configs[0].CellsPerSec != 100 {
		t.Fatalf("legacy entry did not match its own environment: %+v", got)
	}
}

// TestFileUpsertMatchRoundTrip pins the container semantics: one entry
// per environment, refresh-in-place, deterministic order, and a lossless
// write/read cycle.
func TestFileUpsertMatchRoundTrip(t *testing.T) {
	one := &Report{Schema: Schema, GoVersion: "go1.24.0", GOMAXPROCS: 1, Parallel: 1,
		Configs: []Result{{Name: "grid", CellsPerSec: 70}}}
	eight := &Report{Schema: Schema, GoVersion: "go1.24.0", GOMAXPROCS: 8, Parallel: 8,
		Configs: []Result{{Name: "grid", CellsPerSec: 400}}}

	var f File
	f.Upsert(eight)
	f.Upsert(one)
	if len(f.Environments) != 2 || f.Environments[0].GOMAXPROCS != 1 {
		t.Fatalf("environments after upserts: %+v", f.Environments)
	}

	// Refreshing an environment replaces its entry, never appends.
	refreshed := &Report{Schema: Schema, GoVersion: "go1.24.0", GOMAXPROCS: 1, Parallel: 1,
		Configs: []Result{{Name: "grid", CellsPerSec: 75}}}
	f.Upsert(refreshed)
	if len(f.Environments) != 2 {
		t.Fatalf("refresh appended: %d environments", len(f.Environments))
	}
	if got := f.Match(one); got == nil || got.Configs[0].CellsPerSec != 75 {
		t.Fatalf("match after refresh = %+v", got)
	}
	if f.Match(&Report{GoVersion: "go1.25.0", GOMAXPROCS: 1, Parallel: 1}) != nil {
		t.Fatal("matched a foreign environment")
	}

	path := filepath.Join(t.TempDir(), "bench.json")
	var buf bytes.Buffer
	if err := f.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Environments) != 2 || back.Match(eight) == nil {
		t.Fatalf("round trip lost entries: %+v", back.Environments)
	}
}
