package perf

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestRunSmallConfig measures one tiny real configuration end to end and
// checks the report carries coherent numbers.
func TestRunSmallConfig(t *testing.T) {
	cfg := []Config{{
		Name:    "smoke",
		Archs:   []string{"sgx"},
		Attacks: []string{"spectre-v1", "flush+reload"},
		Samples: 16,
	}}
	rep, err := Run(1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != Schema || rep.GoVersion == "" || rep.Parallel != 1 {
		t.Errorf("report header incomplete: %+v", rep)
	}
	if len(rep.Configs) != 1 {
		t.Fatalf("got %d config results, want 1", len(rep.Configs))
	}
	r := rep.Configs[0]
	if r.Cells != 2 {
		t.Errorf("cells = %d, want 2 (one scenario x one arch x stock)", r.Cells)
	}
	if r.WallNS <= 0 || r.CellsPerSec <= 0 {
		t.Errorf("throughput not measured: %+v", r)
	}
}

// raceDetectorEnabled is set by race_test.go under `go test -race`.
var raceDetectorEnabled bool

// TestAllocsPerAccessIsZero pins the substrate's headline property: the
// flattened cache hot path does not allocate.
func TestAllocsPerAccessIsZero(t *testing.T) {
	if raceDetectorEnabled {
		t.Skip("the race runtime allocates on its own account; the zero pin holds only uninstrumented")
	}
	if a := AllocsPerAccess(); a != 0 {
		t.Errorf("AllocsPerAccess = %v, want 0", a)
	}
}

// TestReportRoundTrip writes and re-reads the JSON artifact.
func TestReportRoundTrip(t *testing.T) {
	rep := &Report{
		Schema: Schema, GoVersion: "go-test", GOMAXPROCS: 2, Parallel: 2,
		Configs: []Result{{Name: "a", Cells: 10, WallNS: 1e9, CellsPerSec: 10, TotalSamples: 100, SamplesPerCell: 10}},
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != rep.Schema || len(got.Configs) != 1 || got.Configs[0] != rep.Configs[0] {
		t.Errorf("round trip changed the report: %+v", got)
	}
}

// TestCompare exercises the regression gate: pass within the budget, fail
// beyond it, ignore configs without a baseline, reject schema drift.
func TestCompare(t *testing.T) {
	base := &Report{Schema: Schema, Configs: []Result{
		{Name: "grid", CellsPerSec: 100},
	}}
	ok := &Report{Schema: Schema, Configs: []Result{
		{Name: "grid", CellsPerSec: 80},
		{Name: "new-config", CellsPerSec: 1},
	}}
	if err := Compare(base, ok, 0.25); err != nil {
		t.Errorf("20%% drop within a 25%% budget failed: %v", err)
	}
	bad := &Report{Schema: Schema, Configs: []Result{{Name: "grid", CellsPerSec: 70}}}
	if err := Compare(base, bad, 0.25); err == nil {
		t.Error("30% drop passed a 25% budget")
	}
	drift := &Report{Schema: Schema + 1}
	if err := Compare(base, drift, 0.25); err == nil {
		t.Error("schema mismatch passed")
	}
}

// TestSameEnvironment pins the gate-arming predicate: cells/sec only
// compares across identical (Go release, core count, GOMAXPROCS, pool
// size) environments.
func TestSameEnvironment(t *testing.T) {
	a := &Report{GoVersion: "go1.24.0", NumCPU: 1, GOMAXPROCS: 1, Parallel: 1}
	if !SameEnvironment(a, &Report{GoVersion: "go1.24.0", NumCPU: 1, GOMAXPROCS: 1, Parallel: 1}) {
		t.Error("identical environments reported as different")
	}
	for _, b := range []*Report{
		{GoVersion: "go1.23.0", NumCPU: 1, GOMAXPROCS: 1, Parallel: 1},
		{GoVersion: "go1.24.0", NumCPU: 8, GOMAXPROCS: 1, Parallel: 1},
		{GoVersion: "go1.24.0", NumCPU: 1, GOMAXPROCS: 4, Parallel: 1},
		{GoVersion: "go1.24.0", NumCPU: 1, GOMAXPROCS: 1, Parallel: 4},
	} {
		if SameEnvironment(a, b) {
			t.Errorf("environment %+v reported as matching %+v", b, a)
		}
	}
}

// TestCanonicalConfigsEnumerate sanity-checks the tracked configurations
// without running them (the CI bench job runs them for real).
func TestCanonicalConfigsEnumerate(t *testing.T) {
	cfgs := CanonicalConfigs()
	if len(cfgs) != 2 {
		t.Fatalf("got %d canonical configs, want 2", len(cfgs))
	}
	seen := map[string]bool{}
	for _, c := range cfgs {
		if c.Name == "" || seen[c.Name] {
			t.Errorf("bad or duplicate config name %q", c.Name)
		}
		seen[c.Name] = true
		if c.Samples <= 0 {
			t.Errorf("%s: no sample budget", c.Name)
		}
		if _, err := json.Marshal(c); err != nil {
			t.Errorf("%s: not serializable: %v", c.Name, err)
		}
	}
	if !seen["none+stock/fixed"] || !seen["none+stock/adaptive"] {
		t.Errorf("canonical configs miss the none+stock pair: %v", seen)
	}
}
