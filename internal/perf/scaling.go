package perf

import (
	"fmt"
	"sort"
)

// wideGOMAXPROCS is the multi-core reference point the scaling metric
// compares against the GOMAXPROCS=1 serial reference. The canonical
// BENCH_sweep.json carries both entries per machine shape.
const wideGOMAXPROCS = 8

// Scaling is the derived multi-core metric for one machine shape (Go
// release × physical core count): per configuration, the GOMAXPROCS=8
// entry's cells/sec over the GOMAXPROCS=1 entry's. On a machine with 8
// real cores an X below 1 means the worker pool loses throughput it
// should multiply; on a 1-core machine it means oversubscription
// overhead — scheduler churn, GC pressure from per-job allocation —
// that an efficient engine keeps near zero (X ≈ 1).
type Scaling struct {
	GoVersion string
	NumCPU    int
	// X maps configuration name → 8-core / 1-core cells per second,
	// for configurations present in both entries with a positive
	// serial throughput. Iterate via Names for deterministic order.
	X map[string]float64
}

// Floor is the minimum X every configuration must hold for this
// machine shape. With 8 or more physical cores the pool must earn real
// parallel speedup (1.5×, deliberately conservative against runner
// noise). Between 2 and 7 cores some parallelism is available, so the
// 8-worker entry must at least beat the serial one outright. On a
// single core there is no parallelism at all: the 8-worker run pays an
// irreducible tax — OS timeslicing between 8 hot threads, async
// preemption, cache working-set thrash as slices interleave — so the
// floor bounds that tax at 10% rather than demanding the impossible.
// The adaptive-mode collapse this metric exists to pin out was a 24%
// loss on one core, well below every tier.
func (s *Scaling) Floor() float64 {
	switch {
	case s.NumCPU >= wideGOMAXPROCS:
		return 1.5
	case s.NumCPU > 1:
		return 1.0
	default:
		return 0.9
	}
}

// Names returns the configurations carrying a scaling ratio, sorted.
func (s *Scaling) Names() []string {
	names := make([]string, 0, len(s.X))
	for name := range s.X {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Check fails if any configuration's X fell below the machine shape's
// floor, or if the entries shared no configuration at all (an empty
// metric must not read as a passing one).
func (s *Scaling) Check() error {
	if len(s.X) == 0 {
		return fmt.Errorf("perf: %s numcpu=%d: the GOMAXPROCS=1 and GOMAXPROCS=%d entries share no configuration",
			s.GoVersion, s.NumCPU, wideGOMAXPROCS)
	}
	floor := s.Floor()
	for _, name := range s.Names() {
		if x := s.X[name]; x < floor {
			return fmt.Errorf("perf: %s numcpu=%d: %s scaling_x = %.3f, floor %.2f (GOMAXPROCS=%d vs GOMAXPROCS=1 cells/sec fell below this machine shape's floor)",
				s.GoVersion, s.NumCPU, name, x, floor, wideGOMAXPROCS)
		}
	}
	return nil
}

// ScalingX derives the scaling metric from the artifact: for every
// machine shape (GoVersion × NumCPU) holding both a GOMAXPROCS=1 and a
// GOMAXPROCS=8 entry, the per-configuration cells/sec ratio. It fails
// when no shape holds the pair — a baseline that lost one side of the
// comparison must disarm the gate loudly, not silently pass.
func (f *File) ScalingX() ([]Scaling, error) {
	type shape struct {
		goVersion string
		numCPU    int
	}
	base := map[shape]*Report{}
	wide := map[shape]*Report{}
	for _, r := range f.Environments {
		k := shape{r.GoVersion, r.NumCPU}
		switch r.GOMAXPROCS {
		case 1:
			base[k] = r
		case wideGOMAXPROCS:
			wide[k] = r
		}
	}
	var keys []shape
	for k := range base {
		if wide[k] != nil {
			keys = append(keys, k)
		}
	}
	if len(keys) == 0 {
		return nil, fmt.Errorf("perf: no machine shape carries both a GOMAXPROCS=1 and a GOMAXPROCS=%d entry (%d environments); the scaling gate cannot arm",
			wideGOMAXPROCS, len(f.Environments))
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].goVersion != keys[j].goVersion {
			return keys[i].goVersion < keys[j].goVersion
		}
		return keys[i].numCPU < keys[j].numCPU
	})
	out := make([]Scaling, 0, len(keys))
	for _, k := range keys {
		s := Scaling{GoVersion: k.goVersion, NumCPU: k.numCPU, X: map[string]float64{}}
		serial := map[string]float64{}
		for _, r := range base[k].Configs {
			serial[r.Name] = r.CellsPerSec
		}
		for _, r := range wide[k].Configs {
			if sec := serial[r.Name]; sec > 0 {
				s.X[r.Name] = r.CellsPerSec / sec
			}
		}
		out = append(out, s)
	}
	return out, nil
}
