package perf

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// FileSchema identifies the multi-environment baseline container. The
// original BENCH_sweep.json (schema 1) was a single Report, which tied
// the checked-in baseline to one machine shape: a multi-core refresh
// overwrote the 1-CPU numbers and disarmed the gate everywhere else.
// Schema 2 keeps one Report per environment side by side, so the gate
// arms against whichever entry matches the machine it runs on.
const FileSchema = 2

// File is the BENCH_sweep.json artifact: one throughput Report per
// measured environment (Go release × GOMAXPROCS × worker-pool size).
type File struct {
	Schema       int       `json:"schema"`
	Environments []*Report `json:"environments"`
}

// EnvironmentString names a report's environment the way bench messages
// print it.
func (r *Report) EnvironmentString() string {
	return fmt.Sprintf("%s numcpu=%d gomaxprocs=%d parallel=%d", r.GoVersion, r.NumCPU, r.GOMAXPROCS, r.Parallel)
}

// ReadBaseline loads a baseline file in either layout: the schema-2
// multi-environment container, or a legacy schema-1 single-Report
// artifact (wrapped as a one-environment File so callers see one shape).
func ReadBaseline(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var probe struct {
		Schema       int             `json:"schema"`
		Environments json.RawMessage `json:"environments"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return nil, fmt.Errorf("perf: %s: %w", path, err)
	}
	if probe.Environments == nil {
		rep, err := ReadFile(path)
		if err != nil {
			return nil, err
		}
		return &File{Schema: FileSchema, Environments: []*Report{rep}}, nil
	}
	if probe.Schema != FileSchema {
		return nil, fmt.Errorf("perf: %s: file schema %d, want %d (refresh the baseline)", path, probe.Schema, FileSchema)
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("perf: %s: %w", path, err)
	}
	return &f, nil
}

// Match returns the baseline entry measured in rep's environment, or nil
// when no entry matches — the per-environment arming decision the bench
// gate makes.
func (f *File) Match(rep *Report) *Report {
	for _, b := range f.Environments {
		if SameEnvironment(b, rep) {
			return b
		}
	}
	return nil
}

// Upsert replaces the entry matching rep's environment, or appends one,
// keeping entries deterministically ordered so refreshes diff cleanly.
func (f *File) Upsert(rep *Report) {
	f.Schema = FileSchema
	replaced := false
	for i, b := range f.Environments {
		if SameEnvironment(b, rep) {
			f.Environments[i] = rep
			replaced = true
			break
		}
	}
	if !replaced {
		f.Environments = append(f.Environments, rep)
	}
	sort.Slice(f.Environments, func(i, j int) bool {
		a, b := f.Environments[i], f.Environments[j]
		if a.GoVersion != b.GoVersion {
			return a.GoVersion < b.GoVersion
		}
		if a.GOMAXPROCS != b.GOMAXPROCS {
			return a.GOMAXPROCS < b.GOMAXPROCS
		}
		return a.Parallel < b.Parallel
	})
}

// WriteJSON renders the container as indented JSON.
func (f *File) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}
