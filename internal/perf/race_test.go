//go:build race

package perf

// The race runtime allocates sporadically on its own account, which the
// MemStats-based allocation measurement cannot distinguish from substrate
// allocations; the exact-zero pin only holds (and only matters) in the
// uninstrumented build the bench artifact is produced from.
func init() { raceDetectorEnabled = true }
