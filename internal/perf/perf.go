// Package perf is the cross-PR performance-tracking subsystem: it runs
// the canonical sweep configurations end to end on the engine, measures
// throughput (grid cells per second), realized sample cost and the
// allocation count of the cache hot path, and renders the measurements as
// the machine-readable BENCH_sweep.json artifact the CI bench job tracks
// against the checked-in baseline.
//
// The point is trajectory, not absolutes: cells/sec is hardware-relative,
// so the artifact records the environment next to every number and
// Compare flags relative regressions only. Allocations per access, by
// contrast, are an absolute property of the substrate — the flattened
// cache path allocates nothing, and the tracked number makes that rot
// visibly instead of silently.
//
// See docs/PERFORMANCE.md for how to read and refresh the artifact.
package perf

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"github.com/intrust-sim/intrust/internal/core"
	"github.com/intrust-sim/intrust/internal/engine"
	"github.com/intrust-sim/intrust/internal/platform"
	"github.com/intrust-sim/intrust/internal/stats"
)

// Schema identifies the report layout; bump it when fields change
// incompatibly so Compare can refuse mismatched baselines. Schema 2
// added NumCPU to the environment header: a GOMAXPROCS=8 entry measured
// on a single physical core (oversubscription) and one measured on
// eight real cores (parallel scaling) are different experiments, and
// the scaling gate needs to tell them apart.
const Schema = 2

// Config names one sweep configuration the bench runs: an axis selection
// (empty axes mean "all", as in the sweep CLI) at a sample budget, in
// fixed or adaptive sampling mode.
type Config struct {
	Name     string   `json:"name"`
	Archs    []string `json:"archs,omitempty"`
	Attacks  []string `json:"attacks,omitempty"`
	Defenses []string `json:"defenses,omitempty"`
	Samples  int      `json:"samples"`
	Adaptive bool     `json:"adaptive"`
}

// CanonicalConfigs returns the tracked sweep configurations: the
// none+stock defense grid over the full scenario × architecture registry
// — the same cells BenchmarkSweepDefenseAxis times — in both sampling
// modes, at the benchmark's reference budget.
func CanonicalConfigs() []Config {
	defenses := []string{"none", "stock"}
	return []Config{
		{Name: "none+stock/fixed", Defenses: defenses, Samples: 64},
		{Name: "none+stock/adaptive", Defenses: defenses, Samples: 64, Adaptive: true},
	}
}

// Result is the measured outcome of one configuration.
type Result struct {
	Name        string  `json:"name"`
	Cells       int     `json:"cells"`
	WallNS      int64   `json:"wall_ns"`
	CellsPerSec float64 `json:"cells_per_sec"`
	// TotalSamples and SamplesPerCell state the realized sample cost
	// (adaptive SamplesUsed where cells carry a sampling decision, the
	// nominal budget otherwise; n/a and one-shot cells count zero).
	TotalSamples   int64   `json:"total_samples"`
	SamplesPerCell float64 `json:"samples_per_cell"`
	EarlyStopped   int     `json:"early_stopped,omitempty"`
	Escalated      int     `json:"escalated,omitempty"`
}

// Report is the BENCH_sweep.json artifact: the environment the numbers
// were measured in, the substrate's allocation count, and one Result per
// configuration.
type Report struct {
	Schema    int    `json:"schema"`
	GoVersion string `json:"go_version"`
	// NumCPU is the machine's physical parallelism (runtime.NumCPU),
	// recorded separately from GOMAXPROCS: an 8-worker run on one core
	// measures oversubscription overhead, not multi-core scaling, and
	// the scaling gate calibrates its floor accordingly.
	NumCPU          int      `json:"numcpu"`
	GOMAXPROCS      int      `json:"gomaxprocs"`
	Parallel        int      `json:"parallel"`
	AllocsPerAccess float64  `json:"allocs_per_access"`
	Configs         []Result `json:"configs"`
}

// Run measures every configuration on a worker pool of the given size
// (<= 0 means GOMAXPROCS) and the substrate's allocations per access.
func Run(parallel int, configs []Config) (*Report, error) {
	eng := engine.New(parallel)
	rep := &Report{
		Schema:          Schema,
		GoVersion:       runtime.Version(),
		NumCPU:          runtime.NumCPU(),
		GOMAXPROCS:      runtime.GOMAXPROCS(0),
		Parallel:        eng.Parallel,
		AllocsPerAccess: AllocsPerAccess(),
	}
	for _, c := range configs {
		opt := core.SweepOptions{Samples: c.Samples}
		if c.Adaptive {
			opt.Adaptive = &stats.Policy{}
		}
		exps, err := core.SweepExperimentsWith(c.Archs, c.Attacks, c.Defenses, opt)
		if err != nil {
			return nil, fmt.Errorf("perf: config %s: %w", c.Name, err)
		}
		start := time.Now()
		results, err := eng.Run(context.Background(), exps)
		wall := time.Since(start)
		if err != nil {
			return nil, fmt.Errorf("perf: config %s: %w", c.Name, err)
		}
		s := engine.Summarize(results, wall)
		r := Result{
			Name:         c.Name,
			Cells:        len(results),
			WallNS:       wall.Nanoseconds(),
			TotalSamples: s.TotalSamples,
			EarlyStopped: s.EarlyStopped,
			Escalated:    s.Escalated,
		}
		if secs := wall.Seconds(); secs > 0 {
			r.CellsPerSec = float64(r.Cells) / secs
		}
		if r.Cells > 0 {
			r.SamplesPerCell = float64(s.TotalSamples) / float64(r.Cells)
		}
		rep.Configs = append(rep.Configs, r)
	}
	return rep, nil
}

// AllocsPerAccess measures heap allocations per hierarchy access on the
// server platform over a mixed hit/miss/flush workload — the zero the
// flattened cache path is tracked against. Measured directly from the
// runtime allocation counters so it works outside the testing package.
func AllocsPerAccess() float64 {
	p := platform.NewServer()
	h := p.Core(0).Hier
	const rounds, lines = 64, 512
	access := func() {
		for i := 0; i < lines; i++ {
			h.Data(uint32(i)*64, i%8 == 0, i%3)
		}
		for i := 0; i < lines; i += 8 {
			h.FlushAddr(uint32(i) * 64)
		}
	}
	access() // warm up lazily grown scratch buffers
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	for r := 0; r < rounds; r++ {
		access()
	}
	runtime.ReadMemStats(&m1)
	accesses := float64(rounds) * (lines + lines/8)
	return float64(m1.Mallocs-m0.Mallocs) / accesses
}

// SameEnvironment reports whether two reports were measured in
// comparable environments: same Go release, same physical core count,
// same GOMAXPROCS, same worker-pool size. Cells/sec is
// hardware-relative, so regressing-gate comparisons are only meaningful
// between matching environments — the bench CLI downgrades the gate to
// informational when they differ, instead of failing (or passing) on a
// hardware change.
func SameEnvironment(a, b *Report) bool {
	return a.GoVersion == b.GoVersion && a.NumCPU == b.NumCPU &&
		a.GOMAXPROCS == b.GOMAXPROCS && a.Parallel == b.Parallel
}

// Compare checks a current report against the checked-in baseline: every
// configuration present in both must not regress its cells/sec by more
// than maxRegress (a fraction: 0.25 allows a 25% drop). Configurations
// new to the current report pass — they have no baseline yet — and a
// schema mismatch fails loudly rather than comparing numbers that mean
// different things. Callers should gate on SameEnvironment first;
// Compare itself only compares the numbers it is given.
func Compare(baseline, current *Report, maxRegress float64) error {
	if baseline.Schema != current.Schema {
		return fmt.Errorf("perf: baseline schema %d != current schema %d (refresh the baseline)",
			baseline.Schema, current.Schema)
	}
	base := make(map[string]Result, len(baseline.Configs))
	for _, r := range baseline.Configs {
		base[r.Name] = r
	}
	for _, cur := range current.Configs {
		b, ok := base[cur.Name]
		if !ok || b.CellsPerSec <= 0 {
			continue
		}
		floor := b.CellsPerSec * (1 - maxRegress)
		if cur.CellsPerSec < floor {
			return fmt.Errorf("perf: %s regressed to %.2f cells/sec, floor %.2f (baseline %.2f, max regression %.0f%%)",
				cur.Name, cur.CellsPerSec, floor, b.CellsPerSec, maxRegress*100)
		}
	}
	return nil
}

// WriteJSON renders the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadFile loads a report from disk.
func ReadFile(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("perf: %s: %w", path, err)
	}
	return &rep, nil
}

// String renders the one-line human summary the bench CLI prints.
func (r *Result) String() string {
	return fmt.Sprintf("%-20s %4d cells in %8v  %7.2f cells/sec  %6.1f samples/cell",
		r.Name, r.Cells, time.Duration(r.WallNS).Round(time.Millisecond), r.CellsPerSec, r.SamplesPerCell)
}
