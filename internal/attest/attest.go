// Package attest implements the attestation and sealed-storage primitives
// every surveyed architecture builds on: code measurement (hash chains),
// MAC-based attestation reports (SMART's HMAC over region‖params‖nonce),
// ECDSA-signed quotes for remote attestation (SGX's quoting model), nonce
// freshness tracking, and measurement-bound sealing (AES-GCM under a key
// derived from the platform secret and the enclave identity).
package attest

import (
	"bytes"
	"crypto/aes"
	"crypto/cipher"
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
)

// Measurement is a SHA-256 digest identifying code and initial data.
type Measurement [sha256.Size]byte

// Measure hashes a single blob.
func Measure(data []byte) Measurement { return sha256.Sum256(data) }

// Extend chains a new measurement onto an existing one (TPM-PCR style):
// m' = H(m ‖ H(data)). Load-order therefore matters, as it should.
func (m Measurement) Extend(data []byte) Measurement {
	h := sha256.New()
	h.Write(m[:])
	d := sha256.Sum256(data)
	h.Write(d[:])
	var out Measurement
	copy(out[:], h.Sum(nil))
	return out
}

// String renders the first 8 bytes, enough for logs.
func (m Measurement) String() string { return fmt.Sprintf("%x", m[:8]) }

// Hex renders the full digest.
func (m Measurement) Hex() string { return fmt.Sprintf("%x", m[:]) }

// MeasureChain folds an ordered sequence of blobs into one measurement
// the way enclave loaders build MRENCLAVE: start from the zero register
// and Extend once per blob. The empty chain is the zero measurement.
func MeasureChain(blobs ...[]byte) Measurement {
	var m Measurement
	for _, b := range blobs {
		m = m.Extend(b)
	}
	return m
}

// Report is a local attestation report: a MAC over the measurement, the
// challenger's nonce, and optional application data, keyed with a secret
// only the trusted hardware/ROM can access.
type Report struct {
	Measurement Measurement
	Nonce       []byte
	AppData     []byte
	MAC         []byte
}

func reportDigestInput(m Measurement, nonce, appData []byte) []byte {
	var buf bytes.Buffer
	buf.Write(m[:])
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], uint32(len(nonce)))
	buf.Write(n[:])
	buf.Write(nonce)
	binary.LittleEndian.PutUint32(n[:], uint32(len(appData)))
	buf.Write(n[:])
	buf.Write(appData)
	return buf.Bytes()
}

// NewReport MACs (measurement, nonce, appData) under key.
func NewReport(key []byte, m Measurement, nonce, appData []byte) *Report {
	mac := hmac.New(sha256.New, key)
	mac.Write(reportDigestInput(m, nonce, appData))
	return &Report{Measurement: m, Nonce: nonce, AppData: appData, MAC: mac.Sum(nil)}
}

// VerifyReport checks the MAC with the shared key.
func VerifyReport(key []byte, r *Report) bool {
	mac := hmac.New(sha256.New, key)
	mac.Write(reportDigestInput(r.Measurement, r.Nonce, r.AppData))
	return hmac.Equal(mac.Sum(nil), r.MAC)
}

// Quote is a remotely verifiable report: an ECDSA signature instead of a
// shared-key MAC, so verification needs only the platform's public key —
// the SGX remote-attestation shape (Foreshadow's headline damage was
// extracting exactly these signing keys).
type Quote struct {
	Report    Report
	Signature []byte
}

// QuotingKey is the platform attestation key pair.
type QuotingKey struct {
	priv *ecdsa.PrivateKey
}

// NewQuotingKey generates a P-256 attestation key.
func NewQuotingKey() (*QuotingKey, error) {
	k, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("attest: quoting key: %w", err)
	}
	return &QuotingKey{priv: k}, nil
}

// Public returns the verification key.
func (q *QuotingKey) Public() *ecdsa.PublicKey { return &q.priv.PublicKey }

// PrivateBytes exposes the raw scalar — used only by the Foreshadow
// experiment to demonstrate that leaking enclave memory leaks this key.
func (q *QuotingKey) PrivateBytes() []byte { return q.priv.D.Bytes() }

// Sign produces a quote over the report contents.
func (q *QuotingKey) Sign(r *Report) (*Quote, error) {
	digest := sha256.Sum256(reportDigestInput(r.Measurement, r.Nonce, r.AppData))
	sig, err := ecdsa.SignASN1(rand.Reader, q.priv, digest[:])
	if err != nil {
		return nil, fmt.Errorf("attest: sign quote: %w", err)
	}
	return &Quote{Report: *r, Signature: sig}, nil
}

// SignQuoteWithKey signs a report with an externally supplied ECDSA key.
// The quote digest layout is public (it is part of the attestation
// protocol), so anyone holding the platform scalar can produce valid
// quotes — which is exactly what the Foreshadow experiment demonstrates
// with a stolen key.
func SignQuoteWithKey(k *ecdsa.PrivateKey, r *Report) (*Quote, error) {
	digest := sha256.Sum256(reportDigestInput(r.Measurement, r.Nonce, r.AppData))
	sig, err := ecdsa.SignASN1(rand.Reader, k, digest[:])
	if err != nil {
		return nil, fmt.Errorf("attest: sign quote: %w", err)
	}
	return &Quote{Report: *r, Signature: sig}, nil
}

// VerifyQuote checks a quote against the platform public key.
func VerifyQuote(pub *ecdsa.PublicKey, q *Quote) bool {
	digest := sha256.Sum256(reportDigestInput(q.Report.Measurement, q.Report.Nonce, q.Report.AppData))
	return ecdsa.VerifyASN1(pub, digest[:], q.Signature)
}

// Verifier is a remote challenger: it issues nonces, tracks freshness, and
// checks reports against expected measurements.
type Verifier struct {
	expected map[string]Measurement
	used     map[string]bool
}

// NewVerifier creates a verifier with an allow-list of good measurements.
func NewVerifier() *Verifier {
	return &Verifier{expected: map[string]Measurement{}, used: map[string]bool{}}
}

// AllowMeasurement registers a known-good measurement under a name.
func (v *Verifier) AllowMeasurement(name string, m Measurement) {
	v.expected[name] = m
}

// Challenge issues a fresh random nonce.
func (v *Verifier) Challenge() ([]byte, error) {
	n := make([]byte, 16)
	if _, err := rand.Read(n); err != nil {
		return nil, err
	}
	return n, nil
}

// CheckReport validates MAC, measurement allow-list membership and nonce
// freshness (each nonce accepted once).
func (v *Verifier) CheckReport(key []byte, r *Report) error {
	if !VerifyReport(key, r) {
		return errors.New("attest: report MAC invalid")
	}
	return v.checkCommon(&r.Measurement, r.Nonce)
}

// CheckQuote validates signature, measurement and freshness.
func (v *Verifier) CheckQuote(pub *ecdsa.PublicKey, q *Quote) error {
	if !VerifyQuote(pub, q) {
		return errors.New("attest: quote signature invalid")
	}
	return v.checkCommon(&q.Report.Measurement, q.Report.Nonce)
}

func (v *Verifier) checkCommon(m *Measurement, nonce []byte) error {
	found := false
	for _, e := range v.expected {
		if e == *m {
			found = true
			break
		}
	}
	if !found {
		return fmt.Errorf("attest: measurement %s not in allow-list", m)
	}
	ns := string(nonce)
	if v.used[ns] {
		return errors.New("attest: nonce replayed")
	}
	v.used[ns] = true
	return nil
}

// SealKey derives the sealing key for an identity from the platform
// secret: HMAC(platformSecret, "seal" ‖ measurement). Different code ⇒
// different key, binding sealed data to the enclave identity.
func SealKey(platformSecret []byte, m Measurement) []byte {
	mac := hmac.New(sha256.New, platformSecret)
	mac.Write([]byte("intrust-seal"))
	mac.Write(m[:])
	return mac.Sum(nil)[:16]
}

// Seal encrypts data under the identity-bound key with AES-GCM.
func Seal(platformSecret []byte, m Measurement, data []byte) ([]byte, error) {
	blk, err := aes.NewCipher(SealKey(platformSecret, m))
	if err != nil {
		return nil, err
	}
	gcm, err := cipher.NewGCM(blk)
	if err != nil {
		return nil, err
	}
	nonce := make([]byte, gcm.NonceSize())
	if _, err := rand.Read(nonce); err != nil {
		return nil, err
	}
	return gcm.Seal(nonce, nonce, data, m[:]), nil
}

// Unseal decrypts sealed data; it fails if the measurement (and hence the
// derived key or the bound AAD) differs from the sealer's.
func Unseal(platformSecret []byte, m Measurement, blob []byte) ([]byte, error) {
	blk, err := aes.NewCipher(SealKey(platformSecret, m))
	if err != nil {
		return nil, err
	}
	gcm, err := cipher.NewGCM(blk)
	if err != nil {
		return nil, err
	}
	if len(blob) < gcm.NonceSize() {
		return nil, errors.New("attest: sealed blob truncated")
	}
	pt, err := gcm.Open(nil, blob[:gcm.NonceSize()], blob[gcm.NonceSize():], m[:])
	if err != nil {
		return nil, fmt.Errorf("attest: unseal: %w", err)
	}
	return pt, nil
}
