package attest

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestMeasureAndExtend(t *testing.T) {
	m1 := Measure([]byte("code A"))
	m2 := Measure([]byte("code A"))
	if m1 != m2 {
		t.Fatal("measurement not deterministic")
	}
	if m1 == Measure([]byte("code B")) {
		t.Fatal("distinct code measured equal")
	}
	// Extension order matters.
	a := Measure([]byte("stage1")).Extend([]byte("stage2"))
	b := Measure([]byte("stage2")).Extend([]byte("stage1"))
	if a == b {
		t.Fatal("extension order invisible")
	}
}

func TestReportMACRoundTrip(t *testing.T) {
	key := []byte("device-secret-key")
	m := Measure([]byte("firmware"))
	r := NewReport(key, m, []byte("nonce1"), []byte("app"))
	if !VerifyReport(key, r) {
		t.Fatal("genuine report rejected")
	}
	if VerifyReport([]byte("wrong-key"), r) {
		t.Fatal("wrong key accepted")
	}
	// Any field tamper breaks the MAC.
	r2 := *r
	r2.AppData = []byte("apP")
	if VerifyReport(key, &r2) {
		t.Fatal("tampered app data accepted")
	}
	r3 := *r
	r3.Measurement[0] ^= 1
	if VerifyReport(key, &r3) {
		t.Fatal("tampered measurement accepted")
	}
}

func TestReportMACQuick(t *testing.T) {
	key := []byte("k")
	f := func(code, nonce, app []byte) bool {
		r := NewReport(key, Measure(code), nonce, app)
		return VerifyReport(key, r)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuoteSignVerify(t *testing.T) {
	qk, err := NewQuotingKey()
	if err != nil {
		t.Fatal(err)
	}
	m := Measure([]byte("enclave"))
	r := NewReport([]byte("local"), m, []byte("n"), nil)
	q, err := qk.Sign(r)
	if err != nil {
		t.Fatal(err)
	}
	if !VerifyQuote(qk.Public(), q) {
		t.Fatal("genuine quote rejected")
	}
	q.Report.AppData = []byte("evil")
	if VerifyQuote(qk.Public(), q) {
		t.Fatal("tampered quote accepted")
	}
	if len(qk.PrivateBytes()) == 0 {
		t.Fatal("private scalar empty")
	}
}

func TestVerifierFlow(t *testing.T) {
	key := []byte("shared")
	v := NewVerifier()
	good := Measure([]byte("good code"))
	v.AllowMeasurement("app", good)

	nonce, err := v.Challenge()
	if err != nil {
		t.Fatal(err)
	}
	r := NewReport(key, good, nonce, nil)
	if err := v.CheckReport(key, r); err != nil {
		t.Fatalf("genuine report rejected: %v", err)
	}
	// Replay: same nonce again.
	if err := v.CheckReport(key, r); err == nil {
		t.Fatal("replayed report accepted")
	}
	// Unknown measurement.
	nonce2, _ := v.Challenge()
	bad := NewReport(key, Measure([]byte("malware")), nonce2, nil)
	if err := v.CheckReport(key, bad); err == nil {
		t.Fatal("unknown measurement accepted")
	}
}

func TestVerifierQuotePath(t *testing.T) {
	qk, _ := NewQuotingKey()
	v := NewVerifier()
	m := Measure([]byte("enclave X"))
	v.AllowMeasurement("x", m)
	nonce, _ := v.Challenge()
	q, err := qk.Sign(NewReport(nil, m, nonce, nil))
	if err != nil {
		t.Fatal(err)
	}
	if err := v.CheckQuote(qk.Public(), q); err != nil {
		t.Fatalf("quote rejected: %v", err)
	}
	// A different key cannot impersonate the platform.
	qk2, _ := NewQuotingKey()
	nonce2, _ := v.Challenge()
	forged, _ := qk2.Sign(NewReport(nil, m, nonce2, nil))
	if err := v.CheckQuote(qk.Public(), forged); err == nil {
		t.Fatal("forged quote accepted")
	}
}

func TestSealUnseal(t *testing.T) {
	secret := []byte("platform fuse key")
	m := Measure([]byte("enclave"))
	data := []byte("monotonic counter = 7")
	blob, err := Seal(secret, m, data)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(blob, data) {
		t.Fatal("sealed blob contains plaintext")
	}
	out, err := Unseal(secret, m, blob)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, data) {
		t.Fatalf("unsealed = %q", out)
	}
	// Different code identity cannot unseal.
	if _, err := Unseal(secret, Measure([]byte("other enclave")), blob); err == nil {
		t.Fatal("foreign measurement unsealed the blob")
	}
	// Tampered blob rejected.
	blob[len(blob)-1] ^= 1
	if _, err := Unseal(secret, m, blob); err == nil {
		t.Fatal("tampered blob unsealed")
	}
	// Truncated blob rejected.
	if _, err := Unseal(secret, m, blob[:4]); err == nil {
		t.Fatal("truncated blob unsealed")
	}
}

func TestSealKeyBinding(t *testing.T) {
	s := []byte("secret")
	k1 := SealKey(s, Measure([]byte("a")))
	k2 := SealKey(s, Measure([]byte("b")))
	k3 := SealKey([]byte("other"), Measure([]byte("a")))
	if bytes.Equal(k1, k2) || bytes.Equal(k1, k3) {
		t.Fatal("seal keys not identity/platform bound")
	}
}
