package core

import (
	"context"
	"fmt"
	"math"
	"strconv"
	"strings"

	"github.com/intrust-sim/intrust/internal/engine"
	"github.com/intrust-sim/intrust/internal/scenario"
	"github.com/intrust-sim/intrust/internal/stats"
)

// CellKey is the canonical content address of one grid cell: the full
// tuple that determines a cell's measurement bit for bit under the
// engine's deterministic per-job seeding. Two requests that resolve to
// the same CellKey are guaranteed the same verdict, samples-used and
// confidence — which is what makes a cached cell exactly as trustworthy
// as a freshly computed one (the serve layer's cache soundness
// argument).
//
// Keys are canonical by construction: build them through ResolveCell or
// EnumerateCells, never by hand. Canonicalization folds every accepted
// spelling of the same cell ("Flush+Reload" vs "flush+reload",
// "clock-jitter+ct-aes" vs "ct-aes+clock-jitter", a sample budget below
// the scenario's floor) onto one key, so equivalent requests share one
// cache entry.
type CellKey struct {
	// Scenario is the registered scenario name, in registry spelling.
	Scenario string `json:"scenario"`
	// Arch is the architecture key, in platform spelling.
	Arch string `json:"arch"`
	// Defense is the canonical defense-axis label: "none", "stock", or
	// the sorted lower-cased "+"-joined mitigation names.
	Defense string `json:"defense"`
	// Samples is the effective per-cell sample budget: the requested
	// budget (default 256) raised to the scenario's floor.
	Samples int `json:"samples"`
	// Confidence is the adaptive sampling target in [0.5,1), or 0 for
	// fixed-budget measurement.
	Confidence float64 `json:"confidence"`
	// MaxSamples is the adaptive per-cell sample cap (0 = the stats
	// default); always 0 for fixed-budget keys.
	MaxSamples int `json:"max_samples,omitempty"`
	// Seed is the base engine seed the cell's job seed derives from.
	Seed int64 `json:"seed,omitempty"`
}

// cellKeyVersion tags the encoding layout; bump it when CellKey gains
// or reorders fields so stale cache entries can never be misread.
const cellKeyVersion = "v1"

// Encode renders the key as its canonical cache-address string:
// "cell|v1|scenario|arch|defense|samples|confidence|maxsamples|seed"
// with '%' and '|' percent-escaped inside the string fields. The
// encoding is injective (DecodeCellKey inverts it exactly), so distinct
// tuples can never collide on one cache entry.
func (k CellKey) Encode() string {
	return strings.Join([]string{
		"cell", cellKeyVersion,
		escapeKeyField(k.Scenario),
		escapeKeyField(k.Arch),
		escapeKeyField(k.Defense),
		strconv.Itoa(k.Samples),
		strconv.FormatFloat(k.Confidence, 'g', -1, 64),
		strconv.Itoa(k.MaxSamples),
		strconv.FormatInt(k.Seed, 10),
	}, "|")
}

// DecodeCellKey parses a string produced by Encode back into the key.
// It accepts exactly the canonical encodings: decode(encode(k)) == k
// for every key, and encode(decode(s)) == s for every string it
// accepts.
func DecodeCellKey(s string) (CellKey, error) {
	parts := strings.Split(s, "|")
	if len(parts) != 9 || parts[0] != "cell" || parts[1] != cellKeyVersion {
		return CellKey{}, fmt.Errorf("cell key %q: want 9 fields starting cell|%s", s, cellKeyVersion)
	}
	var k CellKey
	var err error
	if k.Scenario, err = unescapeKeyField(parts[2]); err != nil {
		return CellKey{}, fmt.Errorf("cell key scenario: %w", err)
	}
	if k.Arch, err = unescapeKeyField(parts[3]); err != nil {
		return CellKey{}, fmt.Errorf("cell key arch: %w", err)
	}
	if k.Defense, err = unescapeKeyField(parts[4]); err != nil {
		return CellKey{}, fmt.Errorf("cell key defense: %w", err)
	}
	if k.Samples, err = strconv.Atoi(parts[5]); err != nil {
		return CellKey{}, fmt.Errorf("cell key samples: %w", err)
	}
	if k.Confidence, err = strconv.ParseFloat(parts[6], 64); err != nil {
		return CellKey{}, fmt.Errorf("cell key confidence: %w", err)
	}
	if k.MaxSamples, err = strconv.Atoi(parts[7]); err != nil {
		return CellKey{}, fmt.Errorf("cell key maxsamples: %w", err)
	}
	if k.Seed, err = strconv.ParseInt(parts[8], 10, 64); err != nil {
		return CellKey{}, fmt.Errorf("cell key seed: %w", err)
	}
	// Numeric parsers tolerate spellings Encode never emits ("064",
	// "0.90", "+1"); re-encoding closes the loop so only the one
	// canonical string per key decodes — no two wire strings can alias
	// one cache entry.
	if enc := k.Encode(); enc != s {
		return CellKey{}, fmt.Errorf("cell key %q: non-canonical encoding (canonical %q)", s, enc)
	}
	return k, nil
}

// escapeKeyField percent-escapes the two bytes that would break the
// "|"-joined layout: '%' (the escape itself) and '|' (the separator).
func escapeKeyField(s string) string {
	if !strings.ContainsAny(s, "%|") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 4)
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '%':
			b.WriteString("%25")
		case '|':
			b.WriteString("%7C")
		default:
			b.WriteByte(s[i])
		}
	}
	return b.String()
}

// unescapeKeyField inverts escapeKeyField, rejecting any escape it
// would not itself produce — so the only decodable strings are
// canonical encodings.
func unescapeKeyField(s string) (string, error) {
	if !strings.Contains(s, "%") {
		return s, nil
	}
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); i++ {
		if s[i] != '%' {
			b.WriteByte(s[i])
			continue
		}
		if i+2 >= len(s) {
			return "", fmt.Errorf("truncated escape in %q", s)
		}
		switch s[i+1 : i+3] {
		case "25":
			b.WriteByte('%')
		case "7C":
			b.WriteByte('|')
		default:
			return "", fmt.Errorf("unknown escape %%%s in %q", s[i+1:i+3], s)
		}
		i += 2
	}
	return b.String(), nil
}

// CellOptions carries the measurement knobs a single-cell request
// canonicalizes into its key.
type CellOptions struct {
	// Samples is the requested per-cell budget; <= 0 selects the sweep
	// default (256). ResolveCell raises it to the scenario's floor.
	Samples int
	// Confidence is the adaptive sampling target: 0 selects
	// fixed-budget measurement, otherwise it must lie in [0.5,1) — the
	// same contract as the sweep CLI's -confidence flag.
	Confidence float64
	// MaxSamples caps a hard adaptive cell's total budget (0 = the
	// stats default); ignored (forced to 0) for fixed-budget cells.
	MaxSamples int
	// Seed is the base engine seed (the CLI always uses 0).
	Seed int64
}

// defaultCellSamples mirrors SweepExperimentsWith's fallback budget.
const defaultCellSamples = 256

// norm validates and canonicalizes the options against one scenario.
func (o CellOptions) norm(sc scenario.Scenario) (CellOptions, error) {
	if math.IsNaN(o.Confidence) || math.IsInf(o.Confidence, 0) ||
		(o.Confidence != 0 && (o.Confidence < 0.5 || o.Confidence >= 1)) {
		return o, fmt.Errorf("confidence must be in [0.5,1), or 0 for fixed budgets (got %v)", o.Confidence)
	}
	if o.Samples <= 0 {
		o.Samples = defaultCellSamples
	}
	if floor := scenario.MinSamplesOf(sc); o.Samples < floor {
		o.Samples = floor
	}
	if o.Confidence == 0 {
		o.MaxSamples = 0
	} else if o.MaxSamples < 0 {
		o.MaxSamples = 0
	}
	return o, nil
}

// ResolveCell canonicalizes one (scenario, architecture, defense)
// request into its CellKey through the exact axis-expansion paths the
// sweep uses — expandScenarios, expandAxis and expandDefenses — so a
// spelling the CLI accepts resolves identically over HTTP and the two
// surfaces can never drift. A token that expands to more or fewer than
// one value on any axis (family names, "all", empty) is an error: a
// cell addresses exactly one grid point.
func ResolveCell(scenarioTok, archTok, defenseTok string, opt CellOptions) (CellKey, error) {
	scens, err := expandScenarios([]string{scenarioTok})
	if err != nil {
		return CellKey{}, err
	}
	if len(scens) != 1 || strings.TrimSpace(scenarioTok) == "" || strings.EqualFold(strings.TrimSpace(scenarioTok), "all") {
		return CellKey{}, fmt.Errorf("scenario %q selects %d scenarios; a cell addresses exactly one (use /sweep for grids)", scenarioTok, len(scens))
	}
	archs, err := expandAxis([]string{archTok}, AllArchitectures, "architecture")
	if err != nil {
		return CellKey{}, err
	}
	if len(archs) != 1 || strings.TrimSpace(archTok) == "" || strings.EqualFold(strings.TrimSpace(archTok), "all") {
		return CellKey{}, fmt.Errorf("architecture %q selects %d architectures; a cell addresses exactly one", archTok, len(archs))
	}
	if defenseTok == "" {
		defenseTok = "stock"
	}
	sels, err := expandDefenses([]string{defenseTok})
	if err != nil {
		return CellKey{}, err
	}
	if len(sels) != 1 || strings.EqualFold(strings.TrimSpace(defenseTok), "all") {
		return CellKey{}, fmt.Errorf("defense %q selects %d defense configurations; a cell addresses exactly one", defenseTok, len(sels))
	}
	opt, err = opt.norm(scens[0])
	if err != nil {
		return CellKey{}, err
	}
	return CellKey{
		Scenario:   scens[0].Name(),
		Arch:       archs[0],
		Defense:    sels[0].label,
		Samples:    opt.Samples,
		Confidence: opt.Confidence,
		MaxSamples: opt.MaxSamples,
		Seed:       opt.Seed,
	}, nil
}

// EnumerateCells resolves a full axis selection into canonical cell
// keys, in exactly the grid order SweepExperimentsWith enumerates
// (scenario-major, then architecture, then defense) — the serve layer's
// /sweep endpoint and the CLI sweep walk the same cells in the same
// order because both resolve through this one expansion path.
func EnumerateCells(archs, attacks, defenses []string, opt CellOptions) ([]CellKey, error) {
	archList, err := expandAxis(archs, AllArchitectures, "architecture")
	if err != nil {
		return nil, err
	}
	scens, err := expandScenarios(attacks)
	if err != nil {
		return nil, err
	}
	sels, err := expandDefenses(defenses)
	if err != nil {
		return nil, err
	}
	keys := make([]CellKey, 0, len(scens)*len(archList)*len(sels))
	for _, sc := range scens {
		o, err := opt.norm(sc)
		if err != nil {
			return nil, err
		}
		for _, arch := range archList {
			for _, sel := range sels {
				keys = append(keys, CellKey{
					Scenario:   sc.Name(),
					Arch:       arch,
					Defense:    sel.label,
					Samples:    o.Samples,
					Confidence: o.Confidence,
					MaxSamples: o.MaxSamples,
					Seed:       o.Seed,
				})
			}
		}
	}
	return keys, nil
}

// Experiment rebuilds the engine job a canonical key addresses — the
// same construction the sweep uses, so the cell's derived job seed, and
// therefore its measurement, is bit-identical to the matching sweep
// cell's. Non-canonical keys (hand-built, or decoded from a foreign
// string) are rejected rather than silently re-canonicalized: a cache
// keyed on them would alias distinct addresses to one result.
func (k CellKey) Experiment() (engine.Experiment, error) {
	sc, ok := scenario.Lookup(k.Scenario)
	if !ok || sc.Name() != k.Scenario {
		return engine.Experiment{}, fmt.Errorf("cell key: unknown or non-canonical scenario %q", k.Scenario)
	}
	archs, err := expandAxis([]string{k.Arch}, AllArchitectures, "architecture")
	if err != nil {
		return engine.Experiment{}, err
	}
	if len(archs) != 1 || archs[0] != k.Arch {
		return engine.Experiment{}, fmt.Errorf("cell key: non-canonical architecture %q", k.Arch)
	}
	sel, err := defenseSelForLabel(k.Defense)
	if err != nil {
		return engine.Experiment{}, err
	}
	o, err := CellOptions{Samples: k.Samples, Confidence: k.Confidence, MaxSamples: k.MaxSamples, Seed: k.Seed}.norm(sc)
	if err != nil {
		return engine.Experiment{}, fmt.Errorf("cell key: %w", err)
	}
	if o.Samples != k.Samples || o.MaxSamples != k.MaxSamples {
		return engine.Experiment{}, fmt.Errorf("cell key: non-canonical budget %d/%d for %s (want %d/%d)",
			k.Samples, k.MaxSamples, k.Scenario, o.Samples, o.MaxSamples)
	}
	opt := SweepOptions{Samples: k.Samples}
	if k.Confidence > 0 {
		opt.Adaptive = &stats.Policy{Confidence: k.Confidence, MaxSamples: k.MaxSamples}
	}
	exp := sweepExperiment(sc, k.Arch, sel, opt)
	// The sweep derives seeds from base 0; fold a non-zero base in the
	// same way Experiment.Seed composes with the name hash.
	exp.Seed ^= k.Seed
	return exp, nil
}

// defenseSelForLabel resolves a canonical defense-axis label back into
// the selection it names, rejecting non-canonical spellings.
func defenseSelForLabel(label string) (defenseSel, error) {
	switch label {
	case "none":
		return defenseSel{label: "none"}, nil
	case "stock":
		return defenseSel{label: "stock", stock: true}, nil
	}
	sel, err := namedDefenseSel(strings.ToLower(label))
	if err != nil {
		return defenseSel{}, err
	}
	if sel.label != label {
		return defenseSel{}, fmt.Errorf("cell key: non-canonical defense label %q (canonical %q)", label, sel.label)
	}
	return sel, nil
}

// RunCell computes the one grid cell a canonical key addresses, through
// the same experiment construction and seed derivation as the sweep —
// the serve layer's cell-level entry point. The returned result is
// bit-identical (modulo wall clock) to the matching cell of a full
// sweep run with the same options.
func RunCell(ctx context.Context, k CellKey) (engine.Result, error) {
	exp, err := k.Experiment()
	if err != nil {
		return engine.Result{}, err
	}
	return engine.RunOne(ctx, exp), nil
}
