package core

import (
	"fmt"
	"math/rand"

	"github.com/intrust-sim/intrust/internal/attack/physical"
	"github.com/intrust-sim/intrust/internal/attack/transient"
	"github.com/intrust-sim/intrust/internal/cpu"
	"github.com/intrust-sim/intrust/internal/platform"
	"github.com/intrust-sim/intrust/internal/power"
)

// Fig1Row is one row of the Figure 1 heatmap with the measurement that
// produced each level.
type Fig1Row struct {
	Name     string
	Server   Level
	Mobile   Level
	Embedded Level
	Basis    string
}

// Fig1Result is the regenerated Figure 1.
type Fig1Result struct {
	Rows []Fig1Row
	// PerfMIPS and BudgetW back the two requirement rows.
	PerfMIPS [3]float64
	BudgetW  [3]float64
}

// proximity encodes the environmental assumption of Section 2: servers
// sit in controlled rooms; embedded devices "allow potential adversaries
// in close proximity"; mobile devices sit in between (carried in public,
// but personal and usually attended).
var proximity = [3]float64{0.1, 0.5, 1.0}

// Figure1 regenerates the adversary-model/requirement heatmap from
// measurements on the three platform models.
func Figure1(quick bool) (*Fig1Result, error) {
	res := &Fig1Result{}
	secret := []byte("FIG1SECRET")
	if quick {
		secret = secret[:4]
	}

	// Remote and local software attacks: applicable wherever untrusted
	// software executes, which is every platform class (we verify each
	// platform runs an injected program).
	for _, mk := range []func() *platform.Platform{platform.NewServer, platform.NewMobile, platform.NewEmbedded} {
		p := mk()
		if _, err := p.PerfScore(); err != nil {
			return nil, fmt.Errorf("platform refuses injected workload: %w", err)
		}
	}
	res.Rows = append(res.Rows,
		Fig1Row{Name: "remote attacks", Server: LevelHigh, Mobile: LevelHigh, Embedded: LevelHigh,
			Basis: "injected workloads execute on all three platform models"},
		Fig1Row{Name: "local attacks", Server: LevelHigh, Mobile: LevelHigh, Embedded: LevelHigh,
			Basis: "local adversary subsumes remote capability on all platforms"})

	// Classical physical attacks: channel strength (CPA key bytes at a
	// fixed trace budget) x proximity assumption.
	v, err := physical.NewUnprotectedAES([]byte("fig1 aes key...."))
	if err != nil {
		return nil, err
	}
	traces := 192
	if quick {
		traces = 128
	}
	ts := physical.CollectTraces(v, power.PowerProbe(0.8, 1), traces, rand.New(rand.NewSource(1)))
	cpaBytes := physical.CorrectBytes(physical.CPAKey(ts), []byte("fig1 aes key...."))
	channel := float64(cpaBytes) / 16
	var physLevels [3]Level
	for i := range physLevels {
		physLevels[i] = quantize(channel * proximity[i])
	}
	res.Rows = append(res.Rows, Fig1Row{
		Name:   "classical physical attacks",
		Server: physLevels[0], Mobile: physLevels[1], Embedded: physLevels[2],
		Basis: fmt.Sprintf("CPA recovered %d/16 key bytes at %d traces; scaled by proximity assumption", cpaBytes, traces),
	})

	// Microarchitectural attacks: Spectre extraction rate per platform
	// feature set (speculation width etc.) plus Meltdown-class forwarding.
	micro := [3]Level{}
	feats := []cpu.Features{cpu.HighEndFeatures(), cpu.MobileFeatures(), cpu.EmbeddedFeatures()}
	basis := ""
	for i, f := range feats {
		sp, err := transient.SpectreV1(f, secret, false)
		if err != nil {
			return nil, err
		}
		md, err := transient.Meltdown(f, secret)
		if err != nil {
			return nil, err
		}
		score := float64(sp.Correct+md.Correct) / float64(2*len(secret))
		micro[i] = quantize(score)
		basis += fmt.Sprintf("[%s spectre %d/%d meltdown %d/%d] ",
			[3]string{"server", "mobile", "embedded"}[i],
			sp.Correct, len(secret), md.Correct, len(secret))
	}
	res.Rows = append(res.Rows, Fig1Row{
		Name:   "microarchitectural attacks",
		Server: micro[0], Mobile: micro[1], Embedded: micro[2],
		Basis: basis,
	})

	// Performance requirement: measured MIPS ordering.
	plats := []*platform.Platform{platform.NewServer(), platform.NewMobile(), platform.NewEmbedded()}
	for i, p := range plats {
		s, err := p.PerfScore()
		if err != nil {
			return nil, err
		}
		res.PerfMIPS[i] = s
		res.BudgetW[i] = p.Energy.BudgetW
	}
	res.Rows = append(res.Rows, Fig1Row{
		Name:   "performance",
		Server: LevelHigh, Mobile: LevelMedium, Embedded: LevelLow,
		Basis: fmt.Sprintf("measured %.0f / %.0f / %.0f MIPS", res.PerfMIPS[0], res.PerfMIPS[1], res.PerfMIPS[2]),
	})
	// Energy budget importance: inverse of the power budget.
	res.Rows = append(res.Rows, Fig1Row{
		Name:   "energy budget",
		Server: LevelLow, Mobile: LevelMedium, Embedded: LevelHigh,
		Basis: fmt.Sprintf("budgets %.0f W / %.0f W / %.2f W", res.BudgetW[0], res.BudgetW[1], res.BudgetW[2]),
	})
	return res, nil
}

func quantize(score float64) Level {
	switch {
	case score >= 0.6:
		return LevelHigh
	case score >= 0.2:
		return LevelMedium
	}
	return LevelLow
}

// Render draws the heatmap like the paper's Figure 1.
func (f *Fig1Result) Render() string {
	t := &Table{
		Title:   "Figure 1 — adversary models and non-functional requirements (darker = more important)",
		Columns: []string{"", "Server/Desktop", "Mobile Devices", "Embedded Devices"},
	}
	for _, r := range f.Rows {
		t.Rows = append(t.Rows, []string{r.Name,
			r.Server.glyph() + " " + r.Server.String(),
			r.Mobile.glyph() + " " + r.Mobile.String(),
			r.Embedded.glyph() + " " + r.Embedded.String()})
	}
	for _, r := range f.Rows {
		t.Notes = append(t.Notes, r.Name+": "+r.Basis)
	}
	return t.String()
}
