package core

import (
	"context"
	"fmt"

	"github.com/intrust-sim/intrust/internal/attack/physical"
	"github.com/intrust-sim/intrust/internal/attack/transient"
	"github.com/intrust-sim/intrust/internal/cpu"
	"github.com/intrust-sim/intrust/internal/engine"
	"github.com/intrust-sim/intrust/internal/platform"
	"github.com/intrust-sim/intrust/internal/power"
)

// Fig1Row is one row of the Figure 1 heatmap with the measurement that
// produced each level.
type Fig1Row struct {
	Name     string
	Server   Level
	Mobile   Level
	Embedded Level
	Basis    string
}

// Fig1Result is the regenerated Figure 1.
type Fig1Result struct {
	Rows []Fig1Row
	// PerfMIPS and BudgetW back the two requirement rows.
	PerfMIPS [3]float64
	BudgetW  [3]float64
}

// proximity encodes the environmental assumption of Section 2: servers
// sit in controlled rooms; embedded devices "allow potential adversaries
// in close proximity"; mobile devices sit in between (carried in public,
// but personal and usually attended).
var proximity = [3]float64{0.1, 0.5, 1.0}

// microMeasure is the payload of one per-platform microarchitectural
// experiment: the quantized level and the basis fragment for its class.
type microMeasure struct {
	Level Level
	Basis string
}

// reqMeasure is the payload of the requirements experiment.
type reqMeasure struct {
	PerfMIPS [3]float64
	BudgetW  [3]float64
}

// fig1Experiments enumerates the measurements behind Figure 1 as engine
// jobs. Row assembly happens after the run, in Figure1.
func fig1Experiments(quick bool) []engine.Experiment {
	secret := []byte("FIG1SECRET")
	if quick {
		secret = secret[:4]
	}
	classes := [3]string{"server", "mobile", "embedded"}

	exps := []engine.Experiment{
		// Remote and local software attacks: applicable wherever
		// untrusted software executes, which is every platform class (we
		// verify each platform runs an injected program).
		{
			Name: "fig1/injected-workloads", Attack: "software",
			Run: func(*engine.Ctx) (engine.Outcome, error) {
				for _, mk := range []func() *platform.Platform{platform.NewServer, platform.NewMobile, platform.NewEmbedded} {
					if _, err := mk().PerfScore(); err != nil {
						return engine.Outcome{}, fmt.Errorf("platform refuses injected workload: %w", err)
					}
				}
				return engine.Outcome{Detail: "injected workloads execute on all three platform models"}, nil
			},
		},
		// Classical physical attacks: channel strength (CPA key bytes at
		// a fixed trace budget) x proximity assumption.
		{
			Name: "fig1/cpa-proximity", Attack: "physical", Seed: 1,
			Samples: map[bool]int{true: 128, false: 192}[quick],
			Run: func(ctx *engine.Ctx) (engine.Outcome, error) {
				key := []byte("fig1 aes key....")
				v, err := physical.NewUnprotectedAES(key)
				if err != nil {
					return engine.Outcome{}, err
				}
				ts := physical.CollectTraces(v, power.PowerProbe(0.8, 1), ctx.Samples, ctx.RNG)
				cpaBytes := physical.CorrectBytes(physical.CPAKey(ts), key)
				channel := float64(cpaBytes) / 16
				var levels [3]Level
				for i := range levels {
					levels[i] = quantize(channel * proximity[i])
				}
				return engine.Outcome{
					Metrics: map[string]float64{"cpa_key_bytes": float64(cpaBytes)},
					Payload: Fig1Row{
						Name:   "classical physical attacks",
						Server: levels[0], Mobile: levels[1], Embedded: levels[2],
						Basis: fmt.Sprintf("CPA recovered %d/16 key bytes at %d traces; scaled by proximity assumption", cpaBytes, ctx.Samples),
					},
				}, nil
			},
		},
	}

	// Microarchitectural attacks: Spectre extraction rate per platform
	// feature set (speculation width etc.) plus Meltdown-class
	// forwarding — one independent experiment per platform class.
	feats := []func() cpu.Features{cpu.HighEndFeatures, cpu.MobileFeatures, cpu.EmbeddedFeatures}
	for i := range feats {
		feat, class := feats[i], classes[i]
		exps = append(exps, engine.Experiment{
			Name: "fig1/microarch-" + class, Platform: class, Attack: "transient",
			Run: func(*engine.Ctx) (engine.Outcome, error) {
				sp, err := transient.SpectreV1(feat(), secret, false)
				if err != nil {
					return engine.Outcome{}, err
				}
				md, err := transient.Meltdown(feat(), secret)
				if err != nil {
					return engine.Outcome{}, err
				}
				score := float64(sp.Correct+md.Correct) / float64(2*len(secret))
				return engine.Outcome{
					Metrics: map[string]float64{"spectre_bytes": float64(sp.Correct), "meltdown_bytes": float64(md.Correct)},
					Payload: microMeasure{
						Level: quantize(score),
						Basis: fmt.Sprintf("[%s spectre %d/%d meltdown %d/%d] ",
							class, sp.Correct, len(secret), md.Correct, len(secret)),
					},
				}, nil
			},
		})
	}

	// Performance and energy requirements: measured MIPS ordering and
	// power budgets.
	exps = append(exps, engine.Experiment{
		Name: "fig1/requirements", Attack: "measurement",
		Run: func(*engine.Ctx) (engine.Outcome, error) {
			var m reqMeasure
			for i, mk := range []func() *platform.Platform{platform.NewServer, platform.NewMobile, platform.NewEmbedded} {
				p := mk()
				s, err := p.PerfScore()
				if err != nil {
					return engine.Outcome{}, err
				}
				m.PerfMIPS[i] = s
				m.BudgetW[i] = p.Energy.BudgetW
			}
			return engine.Outcome{Payload: m}, nil
		},
	})
	return exps
}

// Figure1 regenerates the adversary-model/requirement heatmap from
// measurements on the three platform models, fanned out on the engine's
// worker pool.
func Figure1(quick bool) (*Fig1Result, error) {
	results, err := engine.New(0).Run(context.Background(), fig1Experiments(quick))
	if err != nil {
		return nil, err
	}
	byName := map[string]*engine.Result{}
	for i := range results {
		byName[results[i].Name] = &results[i]
	}
	res := &Fig1Result{}
	res.Rows = append(res.Rows,
		Fig1Row{Name: "remote attacks", Server: LevelHigh, Mobile: LevelHigh, Embedded: LevelHigh,
			Basis: byName["fig1/injected-workloads"].Detail},
		Fig1Row{Name: "local attacks", Server: LevelHigh, Mobile: LevelHigh, Embedded: LevelHigh,
			Basis: "local adversary subsumes remote capability on all platforms"})
	res.Rows = append(res.Rows, byName["fig1/cpa-proximity"].Payload.(Fig1Row))

	micro := Fig1Row{Name: "microarchitectural attacks"}
	for i, class := range [3]string{"server", "mobile", "embedded"} {
		m := byName["fig1/microarch-"+class].Payload.(microMeasure)
		switch i {
		case 0:
			micro.Server = m.Level
		case 1:
			micro.Mobile = m.Level
		case 2:
			micro.Embedded = m.Level
		}
		micro.Basis += m.Basis
	}
	res.Rows = append(res.Rows, micro)

	req := byName["fig1/requirements"].Payload.(reqMeasure)
	res.PerfMIPS, res.BudgetW = req.PerfMIPS, req.BudgetW
	res.Rows = append(res.Rows,
		Fig1Row{Name: "performance", Server: LevelHigh, Mobile: LevelMedium, Embedded: LevelLow,
			Basis: fmt.Sprintf("measured %.0f / %.0f / %.0f MIPS", req.PerfMIPS[0], req.PerfMIPS[1], req.PerfMIPS[2])},
		Fig1Row{Name: "energy budget", Server: LevelLow, Mobile: LevelMedium, Embedded: LevelHigh,
			Basis: fmt.Sprintf("budgets %.0f W / %.0f W / %.2f W", req.BudgetW[0], req.BudgetW[1], req.BudgetW[2])})
	return res, nil
}

func quantize(score float64) Level {
	switch {
	case score >= 0.6:
		return LevelHigh
	case score >= 0.2:
		return LevelMedium
	}
	return LevelLow
}

// Render draws the heatmap like the paper's Figure 1.
func (f *Fig1Result) Render() string {
	t := &Table{
		Title:   "Figure 1 — adversary models and non-functional requirements (darker = more important)",
		Columns: []string{"", "Server/Desktop", "Mobile Devices", "Embedded Devices"},
	}
	for _, r := range f.Rows {
		t.Rows = append(t.Rows, []string{r.Name,
			r.Server.glyph() + " " + r.Server.String(),
			r.Mobile.glyph() + " " + r.Mobile.String(),
			r.Embedded.glyph() + " " + r.Embedded.String()})
	}
	for _, r := range f.Rows {
		t.Notes = append(t.Notes, r.Name+": "+r.Basis)
	}
	return t.String()
}
