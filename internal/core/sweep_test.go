package core

import (
	"bytes"
	"context"
	"reflect"
	"strings"
	"testing"

	"github.com/intrust-sim/intrust/internal/engine"
)

func sweepResults(t *testing.T, parallel int) []engine.Result {
	t.Helper()
	exps, err := SweepExperiments(nil, nil, 64)
	if err != nil {
		t.Fatal(err)
	}
	results, err := engine.New(parallel).Run(context.Background(), exps)
	if err != nil {
		t.Fatal(err)
	}
	return results
}

func stripTiming(rs []engine.Result) []engine.Result {
	out := make([]engine.Result, len(rs))
	for i, r := range rs {
		r.DurationNS = 0
		r.Run = nil
		out[i] = r
	}
	return out
}

// TestSweepDeterministicAcrossParallelism is the end-to-end determinism
// check on the real cross-product: same seeds, same measurements, no
// matter the worker count.
func TestSweepDeterministicAcrossParallelism(t *testing.T) {
	serial := sweepResults(t, 1)
	parallel := sweepResults(t, 8)
	if !reflect.DeepEqual(stripTiming(serial), stripTiming(parallel)) {
		t.Error("sweep results differ between -parallel 1 and -parallel 8")
	}
}

func TestSweepCoversCrossProduct(t *testing.T) {
	results := sweepResults(t, 0)
	if want := len(AllArchitectures) * len(AllAttackFamilies); len(results) != want {
		t.Fatalf("sweep produced %d results, want %d", len(results), want)
	}
	seen := map[string]bool{}
	for i := range results {
		seen[results[i].Attack+"/"+results[i].Arch] = true
		if len(results[i].Rows) == 0 {
			t.Errorf("%s emitted no table row", results[i].Name)
		}
	}
	for _, attack := range AllAttackFamilies {
		for _, arch := range AllArchitectures {
			if !seen[attack+"/"+arch] {
				t.Errorf("cross-product cell %s/%s missing", attack, arch)
			}
		}
	}
	// Paper shapes: embedded architectures have no cache side channels;
	// SGX's EPC falls to Foreshadow; in-order cores block Spectre.
	byName := map[string]*engine.Result{}
	for i := range results {
		byName[results[i].Name] = &results[i]
	}
	if v := byName["sweep/cachesca/sancus"].Verdict; v != "n/a" {
		t.Errorf("embedded cachesca verdict = %q, want n/a", v)
	}
	if v := byName["sweep/transient/sgx"].Verdict; v != "LEAKS" {
		t.Errorf("Foreshadow vs SGX = %q, want LEAKS", v)
	}
	if v := byName["sweep/transient/sancus"].Verdict; v != "blocked" {
		t.Errorf("Spectre vs in-order embedded = %q, want blocked", v)
	}
	if v := byName["sweep/cachesca/sanctum"].Verdict; v != "defense holds" {
		t.Errorf("prime+probe vs Sanctum partition = %q, want defense holds", v)
	}
}

func TestSweepRejectsUnknownAxes(t *testing.T) {
	if _, err := SweepExperiments([]string{"enigma"}, nil, 10); err == nil {
		t.Error("unknown architecture accepted")
	}
	if _, err := SweepExperiments(nil, []string{"rowhammer"}, 10); err == nil {
		t.Error("unknown attack family accepted")
	}
	exps, err := SweepExperiments([]string{"sgx", "sancus"}, []string{"transient"}, 10)
	if err != nil || len(exps) != 2 {
		t.Errorf("subset selection wrong: %d exps, err=%v", len(exps), err)
	}
}

// TestSweepJSONReport checks the machine-readable output end to end:
// run, serialize, parse, and find every cross-product cell again.
func TestSweepJSONReport(t *testing.T) {
	exps, err := SweepExperiments([]string{"sgx", "trustlite"}, nil, 32)
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(4)
	results, err := eng.Run(context.Background(), exps)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := engine.NewReport("intrust sweep", eng.Parallel, results, 0).WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	rep, err := engine.ReadReport(&buf)
	if err != nil {
		t.Fatalf("sweep JSON does not parse: %v", err)
	}
	if rep.Summary.Experiments != 6 || len(rep.Results) != 6 {
		t.Errorf("report covers %d/%d experiments, want 6", rep.Summary.Experiments, len(rep.Results))
	}
	rendered := SweepTable(results).String()
	for _, want := range []string{"sgx", "trustlite", "cachesca", "transient", "physical"} {
		if !strings.Contains(rendered, want) {
			t.Errorf("sweep table missing %q", want)
		}
	}
}
