package core

import (
	"bytes"
	"context"
	"reflect"
	"strings"
	"testing"

	"github.com/intrust-sim/intrust/internal/defense"
	"github.com/intrust-sim/intrust/internal/engine"
	"github.com/intrust-sim/intrust/internal/scenario"
)

func sweepResults(t *testing.T, parallel int, defenses ...string) []engine.Result {
	t.Helper()
	exps, err := SweepExperiments(nil, nil, defenses, 48)
	if err != nil {
		t.Fatal(err)
	}
	results, err := engine.New(parallel).Run(context.Background(), exps)
	if err != nil {
		t.Fatal(err)
	}
	return results
}

func stripTiming(rs []engine.Result) []engine.Result {
	out := make([]engine.Result, len(rs))
	for i, r := range rs {
		r.DurationNS = 0
		r.Run = nil
		out[i] = r
	}
	return out
}

// TestSweepDeterministicAcrossParallelism is the end-to-end determinism
// check on the full registry × architecture × defense grid: same seeds,
// same measurements, no matter the worker count. The defense axis mixes
// the baseline, the stock wiring and a named defense so the 3-D grid is
// covered, not just the default layer.
func TestSweepDeterministicAcrossParallelism(t *testing.T) {
	axis := []string{"none", "stock", "way-partition"}
	serial := sweepResults(t, 1, axis...)
	parallel := sweepResults(t, 8, axis...)
	if !reflect.DeepEqual(stripTiming(serial), stripTiming(parallel)) {
		t.Error("sweep results differ between -parallel 1 and -parallel 8")
	}
}

// TestSweepCoversRegistryGrid pins the sweep's coverage claim: the
// default sweep enumerates every registered scenario against every
// architecture under the stock defense layer — at least 100 cells — and
// the paper's qualitative shapes hold on the grid.
func TestSweepCoversRegistryGrid(t *testing.T) {
	results := sweepResults(t, 0)
	nScen := len(scenario.All())
	if nScen < 15 {
		t.Fatalf("registry holds %d scenarios, want >= 15", nScen)
	}
	if want := nScen * len(AllArchitectures); len(results) != want {
		t.Fatalf("sweep produced %d results, want %d", len(results), want)
	}
	if len(results) < 100 {
		t.Fatalf("sweep covers %d cells, want >= 100", len(results))
	}
	byName := map[string]*engine.Result{}
	for i := range results {
		byName[results[i].Name] = &results[i]
		if len(results[i].Rows) == 0 {
			t.Errorf("%s emitted no table row", results[i].Name)
		}
	}
	// Every registered scenario is reachable from SweepExperiments, on
	// every architecture, under the default stock layer.
	for _, sc := range scenario.All() {
		for _, arch := range AllArchitectures {
			name := "sweep/" + sc.Family() + "/" + sc.Name() + "/" + arch + "/stock"
			r, ok := byName[name]
			if !ok {
				t.Errorf("grid cell %s missing", name)
				continue
			}
			// Applicability and the reported verdict must agree: cells
			// the scenario declares n/a report n/a with the paper's
			// reason, applicable cells measure something.
			if applicable, reason := sc.Applicable(arch); !applicable {
				if r.Verdict != "n/a" {
					t.Errorf("%s: verdict %q for non-applicable cell", name, r.Verdict)
				}
				if r.Detail != reason || reason == "" {
					t.Errorf("%s: n/a reason %q, want %q", name, r.Detail, reason)
				}
			} else if r.Verdict == "n/a" || r.Verdict == "" {
				t.Errorf("%s: applicable cell reported verdict %q", name, r.Verdict)
			}
			// The defense column derives from the registry's stock
			// metadata, never a parallel table.
			wantDef := "stock (none)"
			if names := defense.StockNames(arch); len(names) > 0 {
				wantDef = "stock (" + strings.Join(names, "+") + ")"
			}
			if r.Experiment.Defense != wantDef {
				t.Errorf("%s: defense label %q, want %q", name, r.Experiment.Defense, wantDef)
			}
		}
	}
	// Paper shapes: embedded architectures have no cache side channels;
	// SGX's EPC falls to Foreshadow; in-order cores block Spectre; the
	// Sanctum partition holds against Prime+Probe and Flush+Reload;
	// CLKSCREW is a mobile DVFS attack and recovers the TrustZone key.
	for name, want := range map[string]string{
		"sweep/cachesca/prime+probe/sancus/stock":      "n/a",
		"sweep/cachesca/flush+reload/sgx/stock":        "ATTACK SUCCEEDS",
		"sweep/cachesca/prime+probe/sanctum/stock":     "defense holds",
		"sweep/cachesca/flush+reload/sanctum/stock":    "defense holds",
		"sweep/transient/foreshadow/sgx/stock":         "LEAKS",
		"sweep/transient/foreshadow/trustzone/stock":   "n/a",
		"sweep/transient/spectre-v1/sancus/stock":      "blocked",
		"sweep/transient/spectre-v1/sgx/stock":         "LEAKS",
		"sweep/transient/meltdown/trustlite/stock":     "n/a",
		"sweep/physical/clkscrew/trustzone/stock":      "KEY RECOVERED",
		"sweep/physical/clkscrew/sgx/stock":            "n/a",
		"sweep/physical/cpa/sancus/stock":              "KEY RECOVERED",
		"sweep/physical/kocher-timing/trustzone/stock": "KEY RECOVERED",
	} {
		r, ok := byName[name]
		if !ok {
			t.Errorf("expected cell %s missing", name)
			continue
		}
		if r.Verdict != want {
			t.Errorf("%s verdict = %q, want %q", name, r.Verdict, want)
		}
	}
}

// TestSweepDefenseAxis pins the 3-D grid semantics: the defense axis
// multiplies the grid, "all" expands to every cataloged defense, defenses
// without substrate report n/a with a reason, and the acceptance cell —
// flush+reload on SGX — flips broken→mitigated under way-partition.
func TestSweepDefenseAxis(t *testing.T) {
	// -attack flush+reload -arch sgx -defense none,way-partition: two
	// cells, one per defense layer, and the verdict flips.
	exps, err := SweepExperiments([]string{"sgx"}, []string{"flush+reload"}, []string{"none", "way-partition"}, 48)
	if err != nil {
		t.Fatal(err)
	}
	if len(exps) != 2 {
		t.Fatalf("2-layer defense axis produced %d experiments, want 2", len(exps))
	}
	results, err := engine.New(2).Run(context.Background(), exps)
	if err != nil {
		t.Fatal(err)
	}
	byLabel := map[string]*engine.Result{}
	for i := range results {
		byLabel[sweepDefenseLabel(results[i].Name)] = &results[i]
	}
	if got := scenario.VerdictClass(byLabel["none"].Verdict); got != scenario.ClassBroken {
		t.Errorf("flush+reload/sgx/none class = %q, want broken", got)
	}
	if got := scenario.VerdictClass(byLabel["way-partition"].Verdict); got != scenario.ClassMitigated {
		t.Errorf("flush+reload/sgx/way-partition class = %q, want mitigated", got)
	}

	// "all" expands the axis to the whole catalog.
	exps, err = SweepExperiments([]string{"sgx"}, []string{"spectre-v1"}, []string{"all"}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(defense.All()); len(exps) != want {
		t.Errorf("-defense all produced %d experiments, want %d", len(exps), want)
	}

	// A defense with no substrate on the architecture is an n/a cell with
	// a reason, not a silent no-op.
	exps, err = SweepExperiments([]string{"sancus"}, []string{"spectre-v1"}, []string{"way-partition"}, 8)
	if err != nil {
		t.Fatal(err)
	}
	results, err = engine.New(1).Run(context.Background(), exps)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Verdict != "n/a" || !strings.Contains(results[0].Detail, "way-partition") {
		t.Errorf("inapplicable defense cell = %q (%q), want n/a with reason", results[0].Verdict, results[0].Detail)
	}

	// Case-insensitive matching and "+"-combinations; duplicates collapse,
	// including permuted combinations (the label canonicalizes by sorting
	// the resolved names).
	exps, err = SweepExperiments([]string{"sgx"}, []string{"flush+reload"},
		[]string{"WAY-PARTITION", "way-partition", "Ct-Aes+Clock-Jitter", "clock-jitter+CT-AES"}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(exps) != 2 {
		t.Errorf("case/dup/permutation defense axis produced %d experiments, want 2", len(exps))
	}

	// Unknown names are rejected.
	if _, err := SweepExperiments(nil, nil, []string{"moat"}, 8); err == nil {
		t.Error("unknown defense accepted")
	}
}

// TestSweepIdenticalWiringIdenticalNoise pins the seeding contract of the
// defense axis: two cells whose resolved wiring is identical — "none" and
// "stock" on an architecture that ships no defenses, or "stock" and the
// explicit stock defense name — measure byte-identically, so SweepDiff
// can never credit a flip to seed drift between spellings of the same
// configuration.
func TestSweepIdenticalWiringIdenticalNoise(t *testing.T) {
	run := func(archs, attacks, defenses []string) []engine.Result {
		t.Helper()
		exps, err := SweepExperiments(archs, attacks, defenses, 48)
		if err != nil {
			t.Fatal(err)
		}
		results, err := engine.New(2).Run(context.Background(), exps)
		if err != nil {
			t.Fatal(err)
		}
		return results
	}
	// sgx ships no stock defenses: none vs stock is the same wiring.
	results := run([]string{"sgx"}, []string{"flush+reload", "dpa"}, []string{"none", "stock"})
	byKey := map[string][][]string{}
	for i := range results {
		byKey[sweepScenarioName(results[i].Name)+"/"+sweepDefenseLabel(results[i].Name)] = results[i].Rows
	}
	for _, scen := range []string{"flush+reload", "dpa"} {
		if !reflect.DeepEqual(byKey[scen+"/none"], byKey[scen+"/stock"]) {
			t.Errorf("%s: none and stock(none) on sgx measured differently: %v vs %v",
				scen, byKey[scen+"/none"], byKey[scen+"/stock"])
		}
	}
	// sanctum's stock IS way-partition: the stock cell and the explicit
	// way-partition cell are the same wiring.
	results = run([]string{"sanctum"}, []string{"prime+probe"}, []string{"stock", "way-partition"})
	if !reflect.DeepEqual(results[0].Rows, results[1].Rows) {
		t.Errorf("prime+probe on sanctum: stock(way-partition) and way-partition measured differently: %v vs %v",
			results[0].Rows, results[1].Rows)
	}
}

// TestSweepDiff pins the -diff view: the way-partition layer flips the
// flush+reload and prime+probe cells on undefended architectures and
// nothing else in the cachesca column, and the diff refuses to run
// without the none baseline.
func TestSweepDiff(t *testing.T) {
	exps, err := SweepExperiments([]string{"sgx"}, []string{"cachesca"}, []string{"none", "way-partition"}, 48)
	if err != nil {
		t.Fatal(err)
	}
	results, err := engine.New(4).Run(context.Background(), exps)
	if err != nil {
		t.Fatal(err)
	}
	dt, err := SweepDiff(results)
	if err != nil {
		t.Fatal(err)
	}
	flipped := map[string]bool{}
	for _, row := range dt.Rows {
		flipped[row[0]] = true
		if row[3] != scenario.ClassBroken || row[4] != scenario.ClassMitigated {
			t.Errorf("unexpected flip direction in %v", row)
		}
	}
	for _, want := range []string{"flush+reload", "prime+probe"} {
		if !flipped[want] {
			t.Errorf("diff misses the %s flip", want)
		}
	}
	for _, noflip := range []string{"tlb-channel", "branch-shadow", "evict+time"} {
		if flipped[noflip] {
			t.Errorf("diff reports a flip for %s, which way-partition does not cover", noflip)
		}
	}

	// Without a none baseline the diff is an error, not an empty table.
	exps, err = SweepExperiments([]string{"sgx"}, []string{"flush+reload"}, []string{"stock"}, 8)
	if err != nil {
		t.Fatal(err)
	}
	results, err = engine.New(1).Run(context.Background(), exps)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SweepDiff(results); err == nil {
		t.Error("SweepDiff accepted a run without the none baseline")
	}
}

// TestSweepSampleFloors checks that a scenario's declared minimum budget
// is reflected in the enumerated experiment, not silently applied inside
// the job.
func TestSweepSampleFloors(t *testing.T) {
	exps, err := SweepExperiments([]string{"sgx"}, []string{"kocher-timing", "cpa"}, nil, 48)
	if err != nil {
		t.Fatal(err)
	}
	bySuffix := map[string]int{}
	for _, e := range exps {
		parts := strings.Split(e.Name, "/")
		bySuffix[parts[2]] = e.Samples
	}
	if bySuffix["kocher-timing"] != 600 {
		t.Errorf("kocher-timing samples = %d, want the 600 floor", bySuffix["kocher-timing"])
	}
	if bySuffix["cpa"] != 48 {
		t.Errorf("cpa samples = %d, want the requested 48", bySuffix["cpa"])
	}
}

func TestSweepAxisExpansion(t *testing.T) {
	nScen := len(scenario.All())
	// "all" is honored anywhere in the list, not only as the sole entry.
	exps, err := SweepExperiments([]string{"sgx", "all"}, []string{"spectre-v1"}, nil, 10)
	if err != nil || len(exps) != len(AllArchitectures) {
		t.Errorf(`["sgx","all"] expanded to %d experiments (err=%v), want %d`, len(exps), err, len(AllArchitectures))
	}
	exps, err = SweepExperiments([]string{"sgx"}, []string{"cachesca", "all"}, nil, 10)
	if err != nil || len(exps) != nScen {
		t.Errorf(`attack ["cachesca","all"] expanded to %d experiments (err=%v), want %d`, len(exps), err, nScen)
	}
	// Axis matching is case-insensitive for architectures, families and
	// scenario names.
	exps, err = SweepExperiments([]string{"SGX", "Sancus"}, []string{"Physical", "Flush+Reload"}, nil, 10)
	if err != nil {
		t.Fatal(err)
	}
	wantScen := len(scenario.ByFamily("physical")) + 1
	if len(exps) != wantScen*2 {
		t.Errorf("case-insensitive mixed selection produced %d experiments, want %d", len(exps), wantScen*2)
	}
	// Family + member variant dedupes; duplicates collapse.
	exps, err = SweepExperiments([]string{"sgx", "sgx"}, []string{"cachesca", "prime+probe"}, nil, 10)
	if err != nil || len(exps) != len(scenario.ByFamily("cachesca")) {
		t.Errorf("dedup selection produced %d experiments (err=%v)", len(exps), err)
	}
}

func TestSweepRejectsUnknownAxes(t *testing.T) {
	if _, err := SweepExperiments([]string{"enigma"}, nil, nil, 10); err == nil {
		t.Error("unknown architecture accepted")
	}
	if _, err := SweepExperiments(nil, []string{"rowhammer"}, nil, 10); err == nil {
		t.Error("unknown attack accepted")
	}
	// Unknown names are rejected even when "all" appears alongside them.
	if _, err := SweepExperiments([]string{"all", "enigma"}, nil, nil, 10); err == nil {
		t.Error("unknown architecture accepted when riding along with all")
	}
	if _, err := SweepExperiments(nil, nil, []string{"all", "moat"}, 10); err == nil {
		t.Error("unknown defense accepted when riding along with all")
	}
	exps, err := SweepExperiments([]string{"sgx", "sancus"}, []string{"meltdown"}, nil, 10)
	if err != nil || len(exps) != 2 {
		t.Errorf("subset selection wrong: %d exps, err=%v", len(exps), err)
	}
}

// TestSweepJSONReport checks the machine-readable output end to end:
// run, serialize, parse, and find every grid cell again — including the
// defense axis label.
func TestSweepJSONReport(t *testing.T) {
	exps, err := SweepExperiments([]string{"sgx", "trustlite"}, []string{"transient"}, []string{"none", "spec-barrier"}, 16)
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(4)
	results, err := eng.Run(context.Background(), exps)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := engine.NewReport("intrust sweep", eng.Parallel, results, 0).WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	rep, err := engine.ReadReport(&buf)
	if err != nil {
		t.Fatalf("sweep JSON does not parse: %v", err)
	}
	want := len(scenario.ByFamily("transient")) * 2 * 2
	if rep.Summary.Experiments != want || len(rep.Results) != want {
		t.Errorf("report covers %d/%d experiments, want %d", rep.Summary.Experiments, len(rep.Results), want)
	}
	seenDefense := false
	for i := range rep.Results {
		if rep.Results[i].Experiment.Defense == "spec-barrier" {
			seenDefense = true
		}
	}
	if !seenDefense {
		t.Error("JSON report dropped the defense axis label")
	}
	rendered := SweepTable(results).String()
	for _, wantStr := range []string{"sgx", "trustlite", "spectre-v1", "foreshadow", "meltdown", "spec-barrier", "mitigated"} {
		if !strings.Contains(rendered, wantStr) {
			t.Errorf("sweep table missing %q", wantStr)
		}
	}
}
