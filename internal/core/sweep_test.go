package core

import (
	"bytes"
	"context"
	"reflect"
	"strings"
	"testing"

	"github.com/intrust-sim/intrust/internal/engine"
	"github.com/intrust-sim/intrust/internal/scenario"
)

func sweepResults(t *testing.T, parallel int) []engine.Result {
	t.Helper()
	exps, err := SweepExperiments(nil, nil, 48)
	if err != nil {
		t.Fatal(err)
	}
	results, err := engine.New(parallel).Run(context.Background(), exps)
	if err != nil {
		t.Fatal(err)
	}
	return results
}

func stripTiming(rs []engine.Result) []engine.Result {
	out := make([]engine.Result, len(rs))
	for i, r := range rs {
		r.DurationNS = 0
		r.Run = nil
		out[i] = r
	}
	return out
}

// TestSweepDeterministicAcrossParallelism is the end-to-end determinism
// check on the full registry×architecture grid: same seeds, same
// measurements, no matter the worker count.
func TestSweepDeterministicAcrossParallelism(t *testing.T) {
	serial := sweepResults(t, 1)
	parallel := sweepResults(t, 8)
	if !reflect.DeepEqual(stripTiming(serial), stripTiming(parallel)) {
		t.Error("sweep results differ between -parallel 1 and -parallel 8")
	}
}

// TestSweepCoversRegistryGrid pins the api_redesign's coverage claim:
// the default sweep enumerates every registered scenario against every
// architecture — at least 100 cells — and the paper's qualitative shapes
// hold on the enlarged grid.
func TestSweepCoversRegistryGrid(t *testing.T) {
	results := sweepResults(t, 0)
	nScen := len(scenario.All())
	if nScen < 15 {
		t.Fatalf("registry holds %d scenarios, want >= 15", nScen)
	}
	if want := nScen * len(AllArchitectures); len(results) != want {
		t.Fatalf("sweep produced %d results, want %d", len(results), want)
	}
	if len(results) < 100 {
		t.Fatalf("sweep covers %d cells, want >= 100", len(results))
	}
	byName := map[string]*engine.Result{}
	for i := range results {
		byName[results[i].Name] = &results[i]
		if len(results[i].Rows) == 0 {
			t.Errorf("%s emitted no table row", results[i].Name)
		}
	}
	// Every registered scenario is reachable from SweepExperiments, on
	// every architecture.
	for _, sc := range scenario.All() {
		for _, arch := range AllArchitectures {
			name := "sweep/" + sc.Family() + "/" + sc.Name() + "/" + arch
			r, ok := byName[name]
			if !ok {
				t.Errorf("grid cell %s missing", name)
				continue
			}
			// Applicability and the reported verdict must agree: cells
			// the scenario declares n/a report n/a with the paper's
			// reason, applicable cells measure something.
			if applicable, reason := sc.Applicable(arch); !applicable {
				if r.Verdict != "n/a" {
					t.Errorf("%s: verdict %q for non-applicable cell", name, r.Verdict)
				}
				if r.Detail != reason || reason == "" {
					t.Errorf("%s: n/a reason %q, want %q", name, r.Detail, reason)
				}
			} else if r.Verdict == "n/a" || r.Verdict == "" {
				t.Errorf("%s: applicable cell reported verdict %q", name, r.Verdict)
			}
		}
	}
	// Paper shapes: embedded architectures have no cache side channels;
	// SGX's EPC falls to Foreshadow; in-order cores block Spectre; the
	// Sanctum partition holds against Prime+Probe; CLKSCREW is a mobile
	// DVFS attack and recovers the TrustZone key.
	for name, want := range map[string]string{
		"sweep/cachesca/prime+probe/sancus":      "n/a",
		"sweep/cachesca/flush+reload/sgx":        "ATTACK SUCCEEDS",
		"sweep/cachesca/prime+probe/sanctum":     "defense holds",
		"sweep/transient/foreshadow/sgx":         "LEAKS",
		"sweep/transient/foreshadow/trustzone":   "n/a",
		"sweep/transient/spectre-v1/sancus":      "blocked",
		"sweep/transient/spectre-v1/sgx":         "LEAKS",
		"sweep/transient/meltdown/trustlite":     "n/a",
		"sweep/physical/clkscrew/trustzone":      "KEY RECOVERED",
		"sweep/physical/clkscrew/sgx":            "n/a",
		"sweep/physical/cpa/sancus":              "KEY RECOVERED",
		"sweep/physical/kocher-timing/trustzone": "KEY RECOVERED",
	} {
		r, ok := byName[name]
		if !ok {
			t.Errorf("expected cell %s missing", name)
			continue
		}
		if r.Verdict != want {
			t.Errorf("%s verdict = %q, want %q", name, r.Verdict, want)
		}
	}
}

// TestSweepSampleFloors checks that a scenario's declared minimum budget
// is reflected in the enumerated experiment, not silently applied inside
// the job.
func TestSweepSampleFloors(t *testing.T) {
	exps, err := SweepExperiments([]string{"sgx"}, []string{"kocher-timing", "cpa"}, 48)
	if err != nil {
		t.Fatal(err)
	}
	bySuffix := map[string]int{}
	for _, e := range exps {
		parts := strings.Split(e.Name, "/")
		bySuffix[parts[2]] = e.Samples
	}
	if bySuffix["kocher-timing"] != 600 {
		t.Errorf("kocher-timing samples = %d, want the 600 floor", bySuffix["kocher-timing"])
	}
	if bySuffix["cpa"] != 48 {
		t.Errorf("cpa samples = %d, want the requested 48", bySuffix["cpa"])
	}
}

func TestSweepAxisExpansion(t *testing.T) {
	nScen := len(scenario.All())
	// "all" is honored anywhere in the list, not only as the sole entry.
	exps, err := SweepExperiments([]string{"sgx", "all"}, []string{"spectre-v1"}, 10)
	if err != nil || len(exps) != len(AllArchitectures) {
		t.Errorf(`["sgx","all"] expanded to %d experiments (err=%v), want %d`, len(exps), err, len(AllArchitectures))
	}
	exps, err = SweepExperiments([]string{"sgx"}, []string{"cachesca", "all"}, 10)
	if err != nil || len(exps) != nScen {
		t.Errorf(`attack ["cachesca","all"] expanded to %d experiments (err=%v), want %d`, len(exps), err, nScen)
	}
	// Axis matching is case-insensitive for architectures, families and
	// scenario names.
	exps, err = SweepExperiments([]string{"SGX", "Sancus"}, []string{"Physical", "Flush+Reload"}, 10)
	if err != nil {
		t.Fatal(err)
	}
	wantScen := len(scenario.ByFamily("physical")) + 1
	if len(exps) != wantScen*2 {
		t.Errorf("case-insensitive mixed selection produced %d experiments, want %d", len(exps), wantScen*2)
	}
	// Family + member variant dedupes; duplicates collapse.
	exps, err = SweepExperiments([]string{"sgx", "sgx"}, []string{"cachesca", "prime+probe"}, 10)
	if err != nil || len(exps) != len(scenario.ByFamily("cachesca")) {
		t.Errorf("dedup selection produced %d experiments (err=%v)", len(exps), err)
	}
}

func TestSweepRejectsUnknownAxes(t *testing.T) {
	if _, err := SweepExperiments([]string{"enigma"}, nil, 10); err == nil {
		t.Error("unknown architecture accepted")
	}
	if _, err := SweepExperiments(nil, []string{"rowhammer"}, 10); err == nil {
		t.Error("unknown attack accepted")
	}
	// Unknown names are rejected even when "all" appears alongside them.
	if _, err := SweepExperiments([]string{"all", "enigma"}, nil, 10); err == nil {
		t.Error("unknown architecture accepted when riding along with all")
	}
	exps, err := SweepExperiments([]string{"sgx", "sancus"}, []string{"meltdown"}, 10)
	if err != nil || len(exps) != 2 {
		t.Errorf("subset selection wrong: %d exps, err=%v", len(exps), err)
	}
}

// TestSweepJSONReport checks the machine-readable output end to end:
// run, serialize, parse, and find every grid cell again.
func TestSweepJSONReport(t *testing.T) {
	exps, err := SweepExperiments([]string{"sgx", "trustlite"}, []string{"transient"}, 16)
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(4)
	results, err := eng.Run(context.Background(), exps)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := engine.NewReport("intrust sweep", eng.Parallel, results, 0).WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	rep, err := engine.ReadReport(&buf)
	if err != nil {
		t.Fatalf("sweep JSON does not parse: %v", err)
	}
	want := len(scenario.ByFamily("transient")) * 2
	if rep.Summary.Experiments != want || len(rep.Results) != want {
		t.Errorf("report covers %d/%d experiments, want %d", rep.Summary.Experiments, len(rep.Results), want)
	}
	rendered := SweepTable(results).String()
	for _, wantStr := range []string{"sgx", "trustlite", "spectre-v1", "foreshadow", "meltdown"} {
		if !strings.Contains(rendered, wantStr) {
			t.Errorf("sweep table missing %q", wantStr)
		}
	}
}
