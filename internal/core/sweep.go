package core

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"github.com/intrust-sim/intrust/internal/defense"
	"github.com/intrust-sim/intrust/internal/engine"
	"github.com/intrust-sim/intrust/internal/scenario"
	"github.com/intrust-sim/intrust/internal/stats"
)

// AllArchitectures lists the sweepable architecture keys in the paper's
// Section 3 order (high-end to embedded).
var AllArchitectures = scenario.Architectures

// AllAttackFamilies lists the sweepable attack families: the paper's
// Section 4.1 (cache side channels), Section 4.2 (transient execution)
// and Section 5 (classical physical).
var AllAttackFamilies = scenario.FamilyOrder

// AllDefenseNames lists the registered mitigation names in the defense
// registry's deterministic order — the named values of the sweep's
// -defense axis (alongside the axis tokens "none", "stock" and "all").
func AllDefenseNames() []string { return defense.Default.Names() }

// SweepExperiments enumerates the scenario × architecture × defense grid
// as engine jobs: for every requested (scenario, architecture, defense
// selection) triple, one experiment that mounts the registered scenario
// against the selected mitigation configuration — or reports the paper's
// reason when the scenario or the defense has no substrate there (e.g. no
// shared caches to partition on the embedded platforms).
//
// The attacks axis accepts scenario names ("flush+reload", "clkscrew"),
// family names ("cachesca"), or any mix; the defenses axis accepts
// registered defense names ("way-partition"), "+"-joined combinations
// ("ct-aes+clock-jitter"), and the axis tokens "none" (strip everything,
// including stock wiring), "stock" (each architecture's paper wiring,
// resolved from the registry) and "all" (every cataloged defense, one
// grid layer each). All axes match case-insensitively; "all" anywhere in
// an axis selects that full axis. An empty defenses axis defaults to
// ["stock"], which reproduces the paper's §4.1 wiring. Unknown names are
// an error.
func SweepExperiments(archs, attacks, defenses []string, samples int) ([]engine.Experiment, error) {
	return SweepExperimentsWith(archs, attacks, defenses, SweepOptions{Samples: samples})
}

// SweepOptions configures how the enumerated grid cells measure.
type SweepOptions struct {
	// Samples is the per-cell sample budget (raised to each scenario's
	// floor; <= 0 defaults to 256). Under adaptive sampling it is the
	// reference budget the sequential test aims to undercut.
	Samples int
	// Adaptive, when non-nil, runs every cell through the sequential
	// verdict engine (internal/stats) under this policy: cells measure
	// in cumulative checkpoint passes that stop as soon as the verdict
	// separates to the policy's confidence, hard cells escalate up to
	// the policy's sample cap, and every applicable cell's Outcome
	// carries a stats.Decision. Nil keeps the fixed-budget behavior.
	Adaptive *stats.Policy
}

// SweepExperimentsWith is SweepExperiments with explicit options (the
// adaptive sequential-sampling engine lives behind Adaptive).
func SweepExperimentsWith(archs, attacks, defenses []string, opt SweepOptions) ([]engine.Experiment, error) {
	archs, err := expandAxis(archs, AllArchitectures, "architecture")
	if err != nil {
		return nil, err
	}
	scens, err := expandScenarios(attacks)
	if err != nil {
		return nil, err
	}
	sels, err := expandDefenses(defenses)
	if err != nil {
		return nil, err
	}
	if opt.Samples <= 0 {
		opt.Samples = 256
	}
	var exps []engine.Experiment
	for _, sc := range scens {
		for _, arch := range archs {
			for _, sel := range sels {
				exps = append(exps, sweepExperiment(sc, arch, sel, opt))
			}
		}
	}
	return exps, nil
}

// expandAxis resolves one requested axis against its full set: empty
// selects everything, "all" anywhere in the list selects everything (all
// names are still validated), matching is case-insensitive, duplicates
// collapse while preserving order — experiment names must stay unique
// within a run (the engine's seeding contract keys on them).
func expandAxis(req, all []string, what string) ([]string, error) {
	canon := make(map[string]string, len(all))
	for _, v := range all {
		canon[strings.ToLower(v)] = v
	}
	useAll := len(req) == 0
	seen := map[string]bool{}
	var out []string
	for _, r := range req {
		tok := strings.ToLower(strings.TrimSpace(r))
		if tok == "" {
			continue
		}
		if tok == "all" {
			useAll = true
			continue
		}
		c, ok := canon[tok]
		if !ok {
			return nil, fmt.Errorf("unknown %s %q (want one of %s, or all)", what, r, strings.Join(all, "|"))
		}
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	if useAll || len(out) == 0 {
		return all, nil
	}
	return out, nil
}

// expandScenarios resolves the attacks axis against the scenario
// registry: tokens may be family names (expanding to every scenario of
// the family) or individual scenario names, case-insensitively; "all"
// anywhere selects the whole registry. Duplicates collapse while
// preserving selection order.
func expandScenarios(req []string) ([]scenario.Scenario, error) {
	families := map[string]bool{}
	for _, f := range scenario.Families() {
		families[strings.ToLower(f)] = true
	}
	useAll := len(req) == 0
	seen := map[string]bool{}
	var out []scenario.Scenario
	add := func(s scenario.Scenario) {
		if !seen[s.Name()] {
			seen[s.Name()] = true
			out = append(out, s)
		}
	}
	for _, r := range req {
		tok := strings.ToLower(strings.TrimSpace(r))
		switch {
		case tok == "":
		case tok == "all":
			useAll = true
		case families[tok]:
			for _, s := range scenario.ByFamily(tok) {
				add(s)
			}
		default:
			s, ok := scenario.Lookup(tok)
			if !ok {
				return nil, fmt.Errorf("unknown attack %q (want a family [%s], a scenario name from `intrust attacks`, or all)",
					r, strings.Join(scenario.Families(), "|"))
			}
			add(s)
		}
	}
	if useAll || len(out) == 0 {
		return scenario.All(), nil
	}
	return out, nil
}

// defenseSel is one resolved value of the -defense axis: the undefended
// baseline, the per-architecture stock wiring, or an explicit (possibly
// "+"-combined) mitigation set.
type defenseSel struct {
	// label is the canonical axis token, used in experiment names (and
	// therefore in per-job seeds): "none", "stock", "way-partition",
	// "ct-aes+clock-jitter".
	label string
	stock bool
	defs  []defense.Defense // nil for none and stock
}

// forArch resolves the selection against one architecture, returning the
// defenses to mount and the display label for the table's defense column
// (stock shows what it resolved to, so labels cannot drift from wiring).
func (s defenseSel) forArch(arch string) ([]defense.Defense, string) {
	if s.stock {
		ds := defense.StockFor(arch)
		if len(ds) == 0 {
			return nil, "stock (none)"
		}
		names := make([]string, len(ds))
		for i, d := range ds {
			names[i] = d.Name()
		}
		return ds, "stock (" + strings.Join(names, "+") + ")"
	}
	return s.defs, s.label
}

// expandDefenses resolves the defenses axis. Tokens: "none", "stock",
// registered defense names, "+"-joined combinations thereof, and "all"
// (every registered defense, one selection each — the axis tokens are not
// implied; mix them in explicitly, e.g. "none,all"). Matching is
// case-insensitive; duplicates collapse while preserving order; an empty
// axis defaults to ["stock"].
func expandDefenses(req []string) ([]defenseSel, error) {
	if len(req) == 0 {
		return []defenseSel{{label: "stock", stock: true}}, nil
	}
	var out []defenseSel
	seen := map[string]bool{}
	add := func(s defenseSel) {
		if !seen[s.label] {
			seen[s.label] = true
			out = append(out, s)
		}
	}
	useAll := false
	for _, r := range req {
		tok := strings.ToLower(strings.TrimSpace(r))
		switch tok {
		case "":
		case "all":
			useAll = true
		case "none":
			add(defenseSel{label: "none"})
		case "stock":
			add(defenseSel{label: "stock", stock: true})
		default:
			sel, err := namedDefenseSel(tok)
			if err != nil {
				return nil, err
			}
			add(sel)
		}
	}
	if useAll {
		for _, d := range defense.All() {
			add(defenseSel{label: strings.ToLower(d.Name()), defs: []defense.Defense{d}})
		}
	}
	if len(out) == 0 {
		return []defenseSel{{label: "stock", stock: true}}, nil
	}
	return out, nil
}

// namedDefenseSel resolves one (possibly "+"-combined) defense token.
// The label is canonicalized by sorting the resolved names, so permuted
// combinations ("a+b" vs "b+a") collapse into one grid cell instead of
// running the same wiring twice under different labels and seeds.
func namedDefenseSel(tok string) (defenseSel, error) {
	parts := strings.Split(tok, "+")
	var ds []defense.Defense
	seen := map[string]bool{}
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		d, ok := defense.Lookup(p)
		if !ok {
			return defenseSel{}, fmt.Errorf("unknown defense %q (want one of %s; none; stock; all; or a +combination)",
				p, strings.Join(defense.Default.Names(), "|"))
		}
		key := strings.ToLower(d.Name())
		if seen[key] {
			continue
		}
		seen[key] = true
		ds = append(ds, d)
	}
	if len(ds) == 0 {
		return defenseSel{}, fmt.Errorf("empty defense token %q", tok)
	}
	sort.Slice(ds, func(i, j int) bool { return strings.ToLower(ds[i].Name()) < strings.ToLower(ds[j].Name()) })
	return defenseSel{label: resolvedKey(ds), defs: ds}, nil
}

// resolvedKey canonically names a resolved defense set: "none" for the
// empty set, else the sorted lower-cased names joined with "+".
func resolvedKey(ds []defense.Defense) string {
	if len(ds) == 0 {
		return "none"
	}
	names := make([]string, len(ds))
	for i, d := range ds {
		names[i] = strings.ToLower(d.Name())
	}
	sort.Strings(names)
	return strings.Join(names, "+")
}

// sweepCost estimates a cell's relative cost for the engine's shard
// packing: the sample budget (already raised to the scenario's floor)
// weighted by platform class — a server hierarchy costs several times an
// embedded one per sample. One-shot scenarios settle in a single mount
// regardless of budget and cost only the class weight. The estimate
// shapes scheduling exclusively; results never depend on it.
func sweepCost(sc scenario.Scenario, arch string, samples int) int {
	weight := 1
	switch scenario.ClassOf(arch) {
	case scenario.ClassServer:
		weight = 4
	case scenario.ClassMobile:
		weight = 2
	}
	if scenario.IsOneShot(sc) {
		return weight
	}
	return samples * weight
}

// sweepExperiment builds the engine job for one (scenario, architecture,
// defense selection) cell of the grid.
func sweepExperiment(sc scenario.Scenario, arch string, sel defenseSel, opt SweepOptions) engine.Experiment {
	// Raise the budget to the scenario's declared floor so the
	// Experiment's (and the JSON report's) Samples field states the
	// cell's reference cost.
	samples := opt.Samples
	if floor := scenario.MinSamplesOf(sc); samples < floor {
		samples = floor
	}
	defs, display := sel.forArch(arch)
	exp := engine.Experiment{
		Name:     fmt.Sprintf("sweep/%s/%s/%s/%s", sc.Family(), sc.Name(), arch, sel.label),
		Platform: scenario.ClassOf(arch),
		Arch:     arch,
		Attack:   sc.Family(),
		Defense:  display,
		Samples:  samples,
		Cost:     sweepCost(sc, arch, samples),
	}
	// The engine derives the job seed as Seed ^ FNV(Name), and Name ends
	// in the axis token — so "none" and "stock" cells with identical
	// resolved wiring (an architecture with no stock defenses) would
	// otherwise run under different noise and could diverge near verdict
	// thresholds, letting SweepDiff credit a flip to an empty defense
	// set. Cancel the name's hash and seed from the canonical resolved
	// wiring instead: identical wiring → identical noise → identical
	// measurement, under any axis spelling.
	canonical := fmt.Sprintf("sweep/%s/%s/%s/%s", sc.Family(), sc.Name(), arch, resolvedKey(defs))
	exp.Seed = engine.DeriveSeed(0, exp.Name) ^ engine.DeriveSeed(0, canonical)
	naCell := func(reason string) engine.Experiment {
		exp.Cost = 1
		exp.Run = func(*engine.Ctx) (engine.Outcome, error) {
			return engine.Outcome{
				Rows:    scenario.Cell(sc.Name(), arch, "-", "n/a"),
				Verdict: "n/a",
				Detail:  reason,
			}, nil
		}
		return exp
	}
	if ok, reason := sc.Applicable(arch); !ok {
		return naCell(reason)
	}
	for _, d := range defs {
		if ok, reason := d.AppliesTo(arch); !ok {
			return naCell(fmt.Sprintf("defense %s not applicable on %s: %s", d.Name(), arch, reason))
		}
	}
	if opt.Adaptive == nil {
		exp.Run = func(ctx *engine.Ctx) (engine.Outcome, error) {
			if err := ctx.Context.Err(); err != nil {
				return engine.Outcome{}, err
			}
			env, err := scenario.NewEnvWithDefenses(arch, ctx.Samples, ctx.Seed, ctx.RNG, defs)
			if err != nil {
				return engine.Outcome{}, err
			}
			env.BindScratch(ctx.Scratch)
			return sc.Mount(env)
		}
		return exp
	}
	pol := *opt.Adaptive
	exp.Run = func(ctx *engine.Ctx) (engine.Outcome, error) {
		env, err := scenario.NewEnvWithDefenses(arch, ctx.Samples, ctx.Seed, ctx.RNG, defs)
		if err != nil {
			return engine.Outcome{}, err
		}
		env.BindScratch(ctx.Scratch)
		return adaptiveCell(ctx.Context, sc, env, pol, ctx.Samples)
	}
	return exp
}

// adaptiveCell measures one applicable grid cell under the sequential
// verdict engine. Sequential-sampling scenarios run cumulative
// checkpoint passes (stats.Plan); one-shot scenarios settle on a single
// mount; everything else falls back to independent full-budget passes.
// Pass 0 always runs under the cell's own job seed, so a pass that needs
// the full reference budget measures exactly what the fixed engine
// would — the adaptive layer changes cost, never verdicts. Further
// passes (demanded by high confidence targets or disagreeing passes —
// the escalation path) derive their seeds from the job seed and the pass
// index, keeping stopping points independent of engine parallelism.
//
// Cancellation is cooperative at checkpoint granularity: the context is
// checked between passes, and sequential passes run under a plan bound
// to it (stats.Plan.Bind), so a cancelled cell — a disconnected HTTP
// client, an expired compute deadline — stops extending its sample set
// within one SPRT checkpoint and surfaces the context's error instead
// of a truncated measurement. Cancellation never produces a partial
// verdict: the interrupted pass's outcome is discarded wholesale.
func adaptiveCell(ctx context.Context, sc scenario.Scenario, base *scenario.Env, pol stats.Policy, reference int) (engine.Outcome, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return engine.Outcome{}, err
	}
	if scenario.IsOneShot(sc) {
		out, err := sc.Mount(base)
		if err != nil {
			return out, err
		}
		dec := stats.OneShot(pol, scenario.VerdictClass(out.Verdict) == scenario.ClassBroken)
		out.Sampling = &dec
		return out, nil
	}
	t := stats.NewTest(pol, reference)
	seq := scenario.CanMountSeq(sc)
	var out engine.Outcome
	var err error
	for t.NeedMore() {
		if cerr := ctx.Err(); cerr != nil {
			return engine.Outcome{}, cerr
		}
		env := base.Batch(t.Passes(), reference)
		used := reference
		if seq {
			plan := stats.NewPlan(t.Policy(), reference).Bind(ctx)
			out, err = scenario.MountSeq(sc, env, plan)
			if plan.Cancelled() {
				return engine.Outcome{}, ctx.Err()
			}
			used = plan.Used()
		} else {
			out, err = sc.Mount(env)
		}
		if err != nil {
			return out, err
		}
		t.Observe(scenario.VerdictClass(out.Verdict) == scenario.ClassBroken, used)
	}
	dec := t.Conclude()
	out.Sampling = &dec
	return out, nil
}

// sweepScenarioName recovers the bare scenario name from an experiment
// name of the form "sweep/<family>/<name>/<arch>/<defense>", so error
// rows align with the scenario column every successful row uses.
func sweepScenarioName(expName string) string {
	if parts := strings.Split(expName, "/"); len(parts) == 5 {
		return parts[2]
	}
	return expName
}

// sweepDefenseLabel recovers the canonical defense-axis token from an
// experiment name (the fifth path element).
func sweepDefenseLabel(expName string) string {
	if parts := strings.Split(expName, "/"); len(parts) == 5 {
		return parts[4]
	}
	return ""
}

// SweepTable renders sweep results as the familiar ASCII matrix, one row
// per (scenario, architecture, defense) cell, with the normalized
// broken/mitigated/n-a class, the sample cost (used/reference under
// adaptive sampling) and the verdict confidence in the last columns.
func SweepTable(results []engine.Result) *Table {
	t := &Table{
		Title:   "SWEEP — attack scenarios × architectures × defenses (one experiment per cell)",
		Columns: []string{"scenario", "architecture", "defense", "measurement", "verdict", "class", "samples", "conf"},
	}
	// The grid repeats most detail lines (one per architecture) and every
	// n/a reason (one per excluded architecture); note each distinct line
	// once, in first-appearance order.
	noted := map[string]bool{}
	for i := range results {
		r := &results[i]
		if r.Failed() {
			t.Rows = append(t.Rows, []string{sweepScenarioName(r.Name), r.Arch, r.Experiment.Defense, "-", "ERROR: " + r.Err, "error", "-", "-"})
			continue
		}
		samples, conf := sampleCells(r)
		for _, row := range r.Rows {
			if len(row) == 4 {
				t.Rows = append(t.Rows, []string{row[0], row[1], r.Experiment.Defense, row[2], row[3], scenario.VerdictClass(row[3]), samples, conf})
			} else {
				t.Rows = append(t.Rows, row)
			}
		}
		if d := r.Detail; d != "" && !noted[d] {
			noted[d] = true
			t.Notes = append(t.Notes, d)
		}
	}
	if note := samplingNote(results); note != "" {
		t.Notes = append(t.Notes, note)
	}
	return t
}

// sampleCells renders one result's sample-cost and confidence columns:
// "used/reference" plus the sequential test's posterior for adaptive
// cells, the nominal budget and "-" for fixed ones, dashes for n/a.
func sampleCells(r *engine.Result) (samples, conf string) {
	if d := r.Sampling; d != nil {
		if d.Reference == 0 {
			// One-shot measurement: no sample dimension.
			return "1-shot", fmt.Sprintf("%.3f", d.Confidence)
		}
		return fmt.Sprintf("%d/%d", d.SamplesUsed, d.Reference), fmt.Sprintf("%.3f", d.Confidence)
	}
	if r.Verdict == "n/a" {
		return "-", "-"
	}
	return fmt.Sprintf("%d", r.Experiment.Samples), "-"
}

// samplingNote summarizes an adaptive run's realized saving across the
// given results ("" when no cell carries a sampling decision).
func samplingNote(results []engine.Result) string {
	s := engine.Summarize(results, 0)
	if s.EarlyStopped == 0 && s.Escalated == 0 {
		sampled := false
		for i := range results {
			if results[i].Sampling != nil {
				sampled = true
				break
			}
		}
		if !sampled {
			return ""
		}
	}
	if s.FixedSamples == 0 || s.TotalSamples == 0 {
		return ""
	}
	// A mitigated-heavy selection at a high confidence target can cost
	// MORE than fixed budgets (escalation passes); don't word that as a
	// saving.
	trend := fmt.Sprintf("%.1fx saving", float64(s.FixedSamples)/float64(s.TotalSamples))
	if s.TotalSamples > s.FixedSamples {
		trend = fmt.Sprintf("%.1fx the fixed cost", float64(s.TotalSamples)/float64(s.FixedSamples))
	}
	return fmt.Sprintf("adaptive sampling: %d samples vs %d fixed-budget (%s; %d cells early, %d escalated)",
		s.TotalSamples, s.FixedSamples, trend, s.EarlyStopped, s.Escalated)
}

// SweepDiff compares every defended cell of a sweep run against the
// "none" baseline of the same (scenario, architecture) pair and tabulates
// the cells the defense flips — broken→mitigated is the defense's gain,
// mitigated→broken would be a regression. The run must include the
// "none" selection on the defense axis (the CLI's -diff adds it).
func SweepDiff(results []engine.Result) (*Table, error) {
	type cell struct {
		verdict, class, display, conf string
	}
	baseline := map[string]cell{} // scenario/arch -> none cell
	type keyed struct {
		key, label string
		c          cell
	}
	var defended []keyed
	for i := range results {
		r := &results[i]
		if r.Failed() {
			continue
		}
		label := sweepDefenseLabel(r.Name)
		k := sweepScenarioName(r.Name) + "/" + r.Arch
		c := cell{verdict: r.Verdict, class: scenario.VerdictClass(r.Verdict), display: r.Experiment.Defense, conf: "-"}
		if d := r.Sampling; d != nil {
			c.conf = fmt.Sprintf("%.3f", d.Confidence)
		}
		if label == "none" {
			baseline[k] = c
			continue
		}
		defended = append(defended, keyed{key: k, label: label, c: c})
	}
	if len(baseline) == 0 {
		return nil, fmt.Errorf("sweep diff needs the \"none\" baseline on the defense axis (add -defense none,...)")
	}
	t := &Table{
		Title:   "DIFF — cells each defense flips versus the undefended baseline",
		Columns: []string{"scenario", "architecture", "defense", "none", "defended", "flip", "conf"},
	}
	flips, unchanged := 0, 0
	for _, d := range defended {
		base, ok := baseline[d.key]
		if !ok {
			continue
		}
		// n/a cells cannot flip: either the attack has no substrate (both
		// sides n/a) or the defense has none (defended side n/a).
		if base.class == scenario.ClassNA || d.c.class == scenario.ClassNA {
			continue
		}
		if base.class == d.c.class {
			unchanged++
			continue
		}
		flips++
		parts := strings.SplitN(d.key, "/", 2)
		t.Rows = append(t.Rows, []string{parts[0], parts[1], d.c.display,
			base.class, d.c.class, base.class + " -> " + d.c.class, d.c.conf})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d flipped cells, %d defended cells unchanged vs none (n/a cells excluded)", flips, unchanged))
	if note := samplingNote(results); note != "" {
		t.Notes = append(t.Notes, note)
	}
	if flips == 0 {
		t.Notes = append(t.Notes, "no cell changed class: the selected defenses do not affect the selected attacks")
	}
	return t, nil
}
