package core

import (
	"fmt"
	"strings"

	"github.com/intrust-sim/intrust/internal/engine"
	"github.com/intrust-sim/intrust/internal/scenario"
)

// AllArchitectures lists the sweepable architecture keys in the paper's
// Section 3 order (high-end to embedded).
var AllArchitectures = scenario.Architectures

// AllAttackFamilies lists the sweepable attack families: the paper's
// Section 4.1 (cache side channels), Section 4.2 (transient execution)
// and Section 5 (classical physical).
var AllAttackFamilies = scenario.FamilyOrder

// SweepExperiments enumerates the scenario×architecture grid as engine
// jobs: for every requested (scenario, architecture) pair, one experiment
// that mounts the registered scenario against the architecture's defense
// configuration — or reports the paper's reason when the scenario is not
// applicable there (e.g. no shared caches on the embedded platforms).
//
// The attacks axis accepts scenario names ("flush+reload", "clkscrew"),
// family names ("cachesca"), or any mix, case-insensitively; "all"
// anywhere in either axis selects that full axis, as does an empty axis.
// Unknown names are an error.
func SweepExperiments(archs, attacks []string, samples int) ([]engine.Experiment, error) {
	archs, err := expandAxis(archs, AllArchitectures, "architecture")
	if err != nil {
		return nil, err
	}
	scens, err := expandScenarios(attacks)
	if err != nil {
		return nil, err
	}
	if samples <= 0 {
		samples = 256
	}
	var exps []engine.Experiment
	for _, sc := range scens {
		for _, arch := range archs {
			exps = append(exps, sweepExperiment(sc, arch, samples))
		}
	}
	return exps, nil
}

// expandAxis resolves one requested axis against its full set: empty
// selects everything, "all" anywhere in the list selects everything (all
// names are still validated), matching is case-insensitive, duplicates
// collapse while preserving order — experiment names must stay unique
// within a run (the engine's seeding contract keys on them).
func expandAxis(req, all []string, what string) ([]string, error) {
	canon := make(map[string]string, len(all))
	for _, v := range all {
		canon[strings.ToLower(v)] = v
	}
	useAll := len(req) == 0
	seen := map[string]bool{}
	var out []string
	for _, r := range req {
		tok := strings.ToLower(strings.TrimSpace(r))
		if tok == "" {
			continue
		}
		if tok == "all" {
			useAll = true
			continue
		}
		c, ok := canon[tok]
		if !ok {
			return nil, fmt.Errorf("unknown %s %q (want one of %s, or all)", what, r, strings.Join(all, "|"))
		}
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	if useAll || len(out) == 0 {
		return all, nil
	}
	return out, nil
}

// expandScenarios resolves the attacks axis against the scenario
// registry: tokens may be family names (expanding to every scenario of
// the family) or individual scenario names, case-insensitively; "all"
// anywhere selects the whole registry. Duplicates collapse while
// preserving selection order.
func expandScenarios(req []string) ([]scenario.Scenario, error) {
	families := map[string]bool{}
	for _, f := range scenario.Families() {
		families[strings.ToLower(f)] = true
	}
	useAll := len(req) == 0
	seen := map[string]bool{}
	var out []scenario.Scenario
	add := func(s scenario.Scenario) {
		if !seen[s.Name()] {
			seen[s.Name()] = true
			out = append(out, s)
		}
	}
	for _, r := range req {
		tok := strings.ToLower(strings.TrimSpace(r))
		switch {
		case tok == "":
		case tok == "all":
			useAll = true
		case families[tok]:
			for _, s := range scenario.ByFamily(tok) {
				add(s)
			}
		default:
			s, ok := scenario.Lookup(tok)
			if !ok {
				return nil, fmt.Errorf("unknown attack %q (want a family [%s], a scenario name from `intrust attacks`, or all)",
					r, strings.Join(scenario.Families(), "|"))
			}
			add(s)
		}
	}
	if useAll || len(out) == 0 {
		return scenario.All(), nil
	}
	return out, nil
}

// sweepExperiment builds the engine job for one (scenario, architecture)
// cell of the grid.
func sweepExperiment(sc scenario.Scenario, arch string, samples int) engine.Experiment {
	// Raise the budget to the scenario's declared floor so the
	// Experiment's (and the JSON report's) Samples field states what the
	// job actually runs.
	if floor := scenario.MinSamplesOf(sc); samples < floor {
		samples = floor
	}
	exp := engine.Experiment{
		Name:     fmt.Sprintf("sweep/%s/%s/%s", sc.Family(), sc.Name(), arch),
		Platform: scenario.ClassOf(arch),
		Arch:     arch,
		Attack:   sc.Family(),
		Samples:  samples,
	}
	if ok, reason := sc.Applicable(arch); !ok {
		exp.Run = func(*engine.Ctx) (engine.Outcome, error) {
			return engine.Outcome{
				Rows:    scenario.Cell(sc.Name(), arch, "-", "n/a"),
				Verdict: "n/a",
				Detail:  reason,
			}, nil
		}
		return exp
	}
	exp.Run = func(ctx *engine.Ctx) (engine.Outcome, error) {
		env, err := scenario.NewEnv(arch, ctx.Samples, ctx.Seed, ctx.RNG)
		if err != nil {
			return engine.Outcome{}, err
		}
		return sc.Mount(env)
	}
	return exp
}

// sweepScenarioName recovers the bare scenario name from an experiment
// name of the form "sweep/<family>/<name>/<arch>", so error rows align
// with the scenario column every successful row uses.
func sweepScenarioName(expName string) string {
	if parts := strings.Split(expName, "/"); len(parts) == 4 {
		return parts[2]
	}
	return expName
}

// SweepTable renders sweep results as the familiar ASCII matrix.
func SweepTable(results []engine.Result) *Table {
	t := &Table{
		Title:   "SWEEP — attack scenarios × architectures (one experiment per cell)",
		Columns: []string{"scenario", "architecture", "measurement", "verdict"},
	}
	// The grid repeats most detail lines (one per architecture) and every
	// n/a reason (one per excluded architecture); note each distinct line
	// once, in first-appearance order.
	noted := map[string]bool{}
	for i := range results {
		if results[i].Failed() {
			t.Rows = append(t.Rows, []string{sweepScenarioName(results[i].Name), results[i].Arch, "-", "ERROR: " + results[i].Err})
			continue
		}
		t.Rows = append(t.Rows, results[i].Rows...)
		if d := results[i].Detail; d != "" && !noted[d] {
			noted[d] = true
			t.Notes = append(t.Notes, d)
		}
	}
	return t
}
