package core

import (
	"fmt"
	"strings"

	"github.com/intrust-sim/intrust/internal/attack/cachesca"
	"github.com/intrust-sim/intrust/internal/attack/physical"
	"github.com/intrust-sim/intrust/internal/attack/transient"
	"github.com/intrust-sim/intrust/internal/cache"
	"github.com/intrust-sim/intrust/internal/cpu"
	"github.com/intrust-sim/intrust/internal/engine"
	"github.com/intrust-sim/intrust/internal/platform"
	"github.com/intrust-sim/intrust/internal/power"
	"github.com/intrust-sim/intrust/internal/tee/sgx"
)

// AllArchitectures lists the sweepable architecture keys in the paper's
// Section 3 order (high-end to embedded).
var AllArchitectures = []string{
	"sgx", "sanctum", "trustzone", "sanctuary", "smart", "sancus", "trustlite", "tytan",
}

// AllAttackFamilies lists the sweepable attack families: the paper's
// Section 4.1 (cache side channels), Section 4.2 (transient execution)
// and Section 5 (classical physical).
var AllAttackFamilies = []string{"cachesca", "transient", "physical"}

// archClass maps an architecture key to its platform class.
var archClass = map[string]string{
	"sgx": "server", "sanctum": "server",
	"trustzone": "mobile", "sanctuary": "mobile",
	"smart": "embedded", "sancus": "embedded", "trustlite": "embedded", "tytan": "embedded",
}

// SweepExperiments enumerates the attack×architecture cross-product as
// engine jobs: for every requested (attack family, architecture) pair,
// one experiment that mounts the family's representative attack against
// the architecture's defense configuration. Empty or "all" selects the
// full axis. Unknown names are an error.
func SweepExperiments(archs, attacks []string, samples int) ([]engine.Experiment, error) {
	archs, err := expandAxis(archs, AllArchitectures, "architecture")
	if err != nil {
		return nil, err
	}
	attacks, err = expandAxis(attacks, AllAttackFamilies, "attack")
	if err != nil {
		return nil, err
	}
	if samples <= 0 {
		samples = 256
	}
	var exps []engine.Experiment
	for _, attack := range attacks {
		for _, arch := range archs {
			exps = append(exps, sweepExperiment(attack, arch, samples))
		}
	}
	return exps, nil
}

func expandAxis(req, all []string, what string) ([]string, error) {
	if len(req) == 0 || (len(req) == 1 && req[0] == "all") {
		return all, nil
	}
	valid := map[string]bool{}
	for _, v := range all {
		valid[v] = true
	}
	// Deduplicate while preserving order: experiment names must stay
	// unique within a run (the engine's seeding contract keys on them).
	seen := map[string]bool{}
	var out []string
	for _, r := range req {
		if !valid[r] {
			return nil, fmt.Errorf("unknown %s %q (want one of %s, or all)", what, r, strings.Join(all, "|"))
		}
		if !seen[r] {
			seen[r] = true
			out = append(out, r)
		}
	}
	return out, nil
}

// sweepExperiment builds the representative experiment for one
// (attack family, architecture) cell of the cross-product.
func sweepExperiment(attack, arch string, samples int) engine.Experiment {
	// The Kocher timing attack needs a floor of timings to vote exponent
	// bits reliably; apply it here so the Experiment's (and the JSON
	// report's) Samples field states what the job actually runs.
	if attack == "physical" && archClass[arch] == "server" && samples < 600 {
		samples = 600
	}
	exp := engine.Experiment{
		Name:     fmt.Sprintf("sweep/%s/%s", attack, arch),
		Platform: archClass[arch],
		Arch:     arch,
		Attack:   attack,
		Samples:  samples,
	}
	switch attack {
	case "cachesca":
		exp.Run = sweepCacheSCA(arch)
	case "transient":
		exp.Run = sweepTransient(arch)
	case "physical":
		exp.Run = sweepPhysical(arch)
	}
	return exp
}

func sweepRow(attack, arch, cost, verdict string) [][]string {
	return [][]string{{attack, arch, cost, verdict}}
}

// sweepCacheSCA mounts Prime+Probe against the architecture's cache
// defense: none (SGX, TrustZone), LLC partitioning (Sanctum), exclusion
// from shared levels (Sanctuary). Embedded architectures have no shared
// caches, so the family is not applicable — exactly the paper's point
// that "none [of the embedded architectures] even considers cache side
// channels".
func sweepCacheSCA(arch string) func(*engine.Ctx) (engine.Outcome, error) {
	return func(ctx *engine.Ctx) (engine.Outcome, error) {
		if archClass[arch] == "embedded" {
			return engine.Outcome{
				Rows:    sweepRow("cachesca", arch, "-", "n/a"),
				Verdict: "n/a",
				Detail:  "no shared caches on the embedded platform: cache side channels not applicable",
			}, nil
		}
		key := []byte("sweep aes key 16")
		p := platform.NewServer()
		switch arch {
		case "sanctum":
			p.LLC.SetPartition(5, 0x00ff)
			p.LLC.SetPartition(9, 0xff00)
		case "sanctuary":
			p.Core(0).Hier.Cacheability = func(addr uint32) cache.Level {
				if addr >= 0x40000 && addr < 0x42000 {
					return cache.LevelL1
				}
				return cache.LevelAll
			}
		}
		v, err := cachesca.NewVictim(p.Core(0).Hier, key, 5, 0x40000)
		if err != nil {
			return engine.Outcome{}, err
		}
		res := cachesca.PrimeProbe(v, p.LLC, ctx.Samples, 9, ctx.RNG)
		return engine.Outcome{
			Rows:    sweepRow("cachesca", arch, fmt.Sprintf("%d nibbles / %d samples", res.NibblesCorrect, ctx.Samples), cacheVerdict(res)),
			Metrics: map[string]float64{"key_nibbles": float64(res.NibblesCorrect)},
			Verdict: cacheVerdict(res),
			Detail:  "prime+probe vs the architecture's LLC defense",
		}, nil
	}
}

// sweepTransient mounts the family's sharpest transient attack available
// on the architecture: Foreshadow against SGX's EPC, Spectre v1 against
// the other speculative platforms, and Spectre v1 on the in-order
// embedded cores (expected blocked — no speculation window).
func sweepTransient(arch string) func(*engine.Ctx) (engine.Outcome, error) {
	return func(ctx *engine.Ctx) (engine.Outcome, error) {
		if arch == "sgx" {
			s, err := sgx.New(platform.NewServer())
			if err != nil {
				return engine.Outcome{}, err
			}
			r, err := transient.ForeshadowSGX(s, 8, false)
			if err != nil {
				return engine.Outcome{}, err
			}
			out := transientRow(r, arch)
			out.Rows = sweepRow("transient", arch, fmt.Sprintf("foreshadow %d/%d bytes", r.Correct, len(r.Target)), out.Verdict)
			out.Detail = "Foreshadow against the EPC (quoting-enclave key)"
			return out, nil
		}
		secret := []byte("SWEEPSEC")
		var feat cpu.Features
		switch archClass[arch] {
		case "server":
			feat = cpu.HighEndFeatures()
		case "mobile":
			feat = cpu.MobileFeatures()
		default:
			feat = cpu.EmbeddedFeatures()
		}
		r, err := transient.SpectreV1(feat, secret, false)
		if err != nil {
			return engine.Outcome{}, err
		}
		out := transientRow(r, arch)
		out.Rows = sweepRow("transient", arch, fmt.Sprintf("spectre-v1 %d/%d bytes", r.Correct, len(r.Target)), out.Verdict)
		out.Detail = fmt.Sprintf("Spectre v1 on the %s-class core", archClass[arch])
		return out, nil
	}
}

// sweepPhysical mounts the platform class's signature physical attack:
// remote timing (Kocher) against server-class RSA, CLKSCREW against the
// mobile DVFS regulator, and close-proximity CPA against the embedded
// device (the class the paper's Section 5 centers on).
func sweepPhysical(arch string) func(*engine.Ctx) (engine.Outcome, error) {
	return func(ctx *engine.Ctx) (engine.Outcome, error) {
		switch archClass[arch] {
		case "server":
			ok := kocherRecovers(physical.CollectTimingSamples, ctx.Samples, ctx.RNG)
			return engine.Outcome{
				Rows:    sweepRow("physical", arch, fmt.Sprintf("timing, %d samples", ctx.Samples), leakIf(ok)),
				Verdict: leakIf(ok),
				Detail:  "Kocher timing attack on square-and-multiply RSA",
			}, nil
		case "mobile":
			ck, err := physical.CLKSCREW(ctx.Seed)
			if err != nil {
				return engine.Outcome{}, err
			}
			return engine.Outcome{
				Rows:    sweepRow("physical", arch, fmt.Sprintf("CLKSCREW OC to %d MHz", ck.OverclockMHz), leakIf(ck.Success)),
				Metrics: map[string]float64{"invocations": float64(ck.Invocations)},
				Verdict: leakIf(ck.Success),
				Detail:  "CLKSCREW fault injection via the DVFS regulator",
			}, nil
		default:
			key := []byte("sweep embd key16")
			v, err := physical.NewUnprotectedAES(key)
			if err != nil {
				return engine.Outcome{}, err
			}
			ts := physical.CollectTraces(v, power.PowerProbe(0.8, 1), ctx.Samples, ctx.RNG)
			got := physical.CorrectBytes(physical.CPAKey(ts), key)
			return engine.Outcome{
				Rows:    sweepRow("physical", arch, fmt.Sprintf("CPA %d/16 key bytes @ %d traces", got, ctx.Samples), leakIf(got >= 14)),
				Metrics: map[string]float64{"key_bytes": float64(got)},
				Verdict: leakIf(got >= 14),
				Detail:  "close-proximity CPA on the device's AES",
			}, nil
		}
	}
}

// SweepTable renders sweep results as the familiar ASCII matrix.
func SweepTable(results []engine.Result) *Table {
	t := &Table{
		Title:   "SWEEP — attack families × architectures (one experiment per cell)",
		Columns: []string{"attack", "architecture", "measurement", "verdict"},
	}
	for i := range results {
		if results[i].Failed() {
			t.Rows = append(t.Rows, []string{results[i].Attack, results[i].Arch, "-", "ERROR: " + results[i].Err})
			continue
		}
		t.Rows = append(t.Rows, results[i].Rows...)
		if d := results[i].Detail; d != "" {
			t.Notes = append(t.Notes, fmt.Sprintf("%s/%s: %s", results[i].Attack, results[i].Arch, d))
		}
	}
	return t
}
