package core

import (
	"strings"
	"testing"
)

func TestFigure1ReproducesPaperShape(t *testing.T) {
	f, err := Figure1(true)
	if err != nil {
		t.Fatal(err)
	}
	rows := map[string]Fig1Row{}
	for _, r := range f.Rows {
		rows[r.Name] = r
	}
	// Remote/local: uniformly high.
	for _, name := range []string{"remote attacks", "local attacks"} {
		r := rows[name]
		if r.Server != LevelHigh || r.Mobile != LevelHigh || r.Embedded != LevelHigh {
			t.Errorf("%s not uniformly high: %+v", name, r)
		}
	}
	// Classical physical: increases toward embedded.
	cp := rows["classical physical attacks"]
	if !(cp.Embedded > cp.Server) {
		t.Errorf("classical physical gradient wrong: %+v", cp)
	}
	// Microarchitectural: decreases toward embedded.
	ma := rows["microarchitectural attacks"]
	if !(ma.Server > ma.Embedded) {
		t.Errorf("microarchitectural gradient wrong: %+v", ma)
	}
	if ma.Server != LevelHigh || ma.Embedded != LevelLow {
		t.Errorf("microarchitectural endpoints wrong: %+v", ma)
	}
	// Requirements: performance decreases, energy importance increases.
	if !(f.PerfMIPS[0] > f.PerfMIPS[1] && f.PerfMIPS[1] > f.PerfMIPS[2]) {
		t.Errorf("performance ordering wrong: %v", f.PerfMIPS)
	}
	if !(f.BudgetW[0] > f.BudgetW[1] && f.BudgetW[1] > f.BudgetW[2]) {
		t.Errorf("budget ordering wrong: %v", f.BudgetW)
	}
	out := f.Render()
	if !strings.Contains(out, "Figure 1") || !strings.Contains(out, "██") {
		t.Error("render missing heatmap content")
	}
}

func TestTable2MatchesPaperClaims(t *testing.T) {
	tab, err := Table2Architectures()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 8 {
		t.Fatalf("architectures = %d, want 8", len(tab.Rows))
	}
	byName := map[string][]string{}
	for _, r := range tab.Rows {
		byName[r[0]] = r
	}
	col := func(name string) int {
		for i, c := range tab.Columns {
			if c == name {
				return i
			}
		}
		t.Fatalf("column %q missing", name)
		return -1
	}
	sgxRow := byName["Intel SGX (model)"]
	sanctumRow := byName["Sanctum (model)"]
	tzRow := byName["ARM TrustZone (model)"]
	sancRow := byName["Sanctuary (model)"]
	smartRow := byName["SMART (model)"]

	// SGX: encrypted bus, DMA blocked, no cache defense, multi-enclave.
	if sgxRow[col("bus snoop")] != "blocked" {
		t.Error("SGX bus snoop should be blocked (MEE)")
	}
	if sgxRow[col("cache defense")] != "none" {
		t.Error("SGX should declare no cache defense")
	}
	// Sanctum: bus snoop LEAKS (no encryption), DMA blocked, partition.
	if sanctumRow[col("bus snoop")] != "LEAKS" {
		t.Error("Sanctum bus snoop should leak (no memory encryption)")
	}
	if sanctumRow[col("DMA attack")] != "blocked" {
		t.Error("Sanctum DMA should be blocked")
	}
	if sanctumRow[col("cache defense")] != "llc-partition" {
		t.Error("Sanctum cache defense wrong")
	}
	// TrustZone: single enclave.
	if tzRow[col("multi-enclave")] != "-" {
		t.Error("TrustZone should be single-enclave")
	}
	// Sanctuary: multi-enclave with exclusion.
	if sancRow[col("multi-enclave")] != "yes" || sancRow[col("cache defense")] != "cache-exclusion" {
		t.Error("Sanctuary row wrong")
	}
	// SMART: no isolation probes, attestation verified.
	if smartRow[col("OS access")] != "n/a" {
		t.Error("SMART has no enclave to probe")
	}
	// All enclave-bearing architectures keep the OS out.
	for name, row := range byName {
		if row[col("OS access")] == "LEAKS" && name != "SMART (model)" {
			t.Errorf("%s leaks to OS access", name)
		}
	}
}

func TestTable3ShapesMatchSection41(t *testing.T) {
	tab, err := Table3CacheSCA(200)
	if err != nil {
		t.Fatal(err)
	}
	verdictOf := func(attack, defense string) string {
		for _, r := range tab.Rows {
			if r[0] == attack && strings.Contains(r[1], defense) {
				return r[3]
			}
		}
		t.Fatalf("row %s/%s missing", attack, defense)
		return ""
	}
	if verdictOf("flush+reload", "none") != "ATTACK SUCCEEDS" {
		t.Error("Flush+Reload should succeed undefended")
	}
	if verdictOf("prime+probe", "none") != "ATTACK SUCCEEDS" {
		t.Error("Prime+Probe should succeed undefended")
	}
	if verdictOf("prime+probe", "LLC partition") != "defense holds" {
		t.Error("Sanctum partition should hold")
	}
	if verdictOf("prime+probe", "randomized") != "defense holds" {
		t.Error("randomized mapping should hold")
	}
	if verdictOf("prime+probe", "cache exclusion") != "defense holds" {
		t.Error("Sanctuary exclusion should hold")
	}
	if verdictOf("tlb prime+probe", "shared TLB") != "ATTACK SUCCEEDS" {
		t.Error("TLB attack should succeed on shared TLB")
	}
	if verdictOf("btb shadowing", "shared predictor") != "ATTACK SUCCEEDS" {
		t.Error("BTB shadowing should succeed")
	}
}

func TestTable4ShapesMatchSection42(t *testing.T) {
	tab, err := Table4Transient(6)
	if err != nil {
		t.Fatal(err)
	}
	verdictOf := func(attack, config string) string {
		for _, r := range tab.Rows {
			if r[0] == attack && strings.Contains(r[1], config) {
				return r[3]
			}
		}
		t.Fatalf("row %s/%s missing", attack, config)
		return ""
	}
	leaks := map[[2]string]string{
		{"spectre-pht", "high-end"}:      "LEAKS",
		{"spectre-pht", "fence"}:         "blocked",
		{"spectre-pht", "in-order"}:      "blocked",
		{"spectre-btb", "shared"}:        "LEAKS",
		{"spectre-btb", "IBPB"}:          "blocked",
		{"ret2spec", "shared RSB"}:       "LEAKS",
		{"meltdown", "fault-forwarding"}: "LEAKS",
		{"meltdown", "fixed"}:            "blocked",
		{"foreshadow", "L1TF silicon"}:   "LEAKS",
		{"foreshadow", "L1-flush"}:       "blocked",
	}
	for k, want := range leaks {
		if got := verdictOf(k[0], k[1]); got != want {
			t.Errorf("%s/%s = %s, want %s", k[0], k[1], got, want)
		}
	}
}

func TestTable5ShapesMatchSection5(t *testing.T) {
	tab, err := Table5Physical(true)
	if err != nil {
		t.Fatal(err)
	}
	verdictOf := func(attack, target string) string {
		for _, r := range tab.Rows {
			if strings.Contains(r[0], attack) && strings.Contains(r[1], target) {
				return r[3]
			}
		}
		t.Fatalf("row %s/%s missing", attack, target)
		return ""
	}
	want := map[[2]string]string{
		{"timing", "square-and-multiply"}: "KEY RECOVERED",
		{"timing", "ladder"}:              "blocked",
		{"CPA", "unprotected"}:            "KEY RECOVERED",
		{"CPA", "masking"}:                "blocked",
		{"DFA", "unprotected"}:            "KEY RECOVERED",
		{"DFA", "redundant"}:              "blocked",
		{"RSA-CRT", "unprotected"}:        "KEY RECOVERED",
		{"CLKSCREW", "secure-world"}:      "KEY RECOVERED",
		{"CLKSCREW", "nominal"}:           "blocked",
	}
	for k, v := range want {
		if got := verdictOf(k[0], k[1]); got != v {
			t.Errorf("%s/%s = %s, want %s", k[0], k[1], got, v)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{Title: "T", Columns: []string{"a", "bb"}, Rows: [][]string{{"1", "2"}}, Notes: []string{"n"}}
	out := tab.String()
	for _, want := range []string{"T", "| a ", "| bb |", "note: n"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	if LevelLow.String() == LevelHigh.String() {
		t.Error("level strings collide")
	}
}
