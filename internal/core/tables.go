package core

import (
	"fmt"
	"math/big"
	"math/rand"

	"github.com/intrust-sim/intrust/internal/attack/cachesca"
	"github.com/intrust-sim/intrust/internal/attack/physical"
	"github.com/intrust-sim/intrust/internal/attack/transient"
	"github.com/intrust-sim/intrust/internal/attest"
	"github.com/intrust-sim/intrust/internal/cache"
	"github.com/intrust-sim/intrust/internal/cpu"
	"github.com/intrust-sim/intrust/internal/isa"
	"github.com/intrust-sim/intrust/internal/platform"
	"github.com/intrust-sim/intrust/internal/power"
	"github.com/intrust-sim/intrust/internal/softcrypto"
	"github.com/intrust-sim/intrust/internal/tee"
	"github.com/intrust-sim/intrust/internal/tee/sanctuary"
	"github.com/intrust-sim/intrust/internal/tee/sanctum"
	"github.com/intrust-sim/intrust/internal/tee/sancus"
	"github.com/intrust-sim/intrust/internal/tee/sgx"
	"github.com/intrust-sim/intrust/internal/tee/smart"
	"github.com/intrust-sim/intrust/internal/tee/trustlite"
	"github.com/intrust-sim/intrust/internal/tee/trustzone"
	"github.com/intrust-sim/intrust/internal/tee/tytan"
)

// enclaveProgram is the common single-page enclave image used by probes.
const enclaveProgram = ".org 0\nhlt"

// archProbe holds one architecture instance prepared with a secret-bearing
// enclave (where the architecture supports one).
type archProbe struct {
	arch      tee.Architecture
	enclave   tee.Enclave
	secretOff uint32
	secret    byte
	attestKey []byte
	notes     string
}

func buildArchProbes() ([]*archProbe, error) {
	var out []*archProbe
	secret := byte(0x5C)
	prog := func() *isa.Program { return isa.MustAssemble(enclaveProgram) }

	// SGX.
	{
		s, err := sgx.New(platform.NewServer())
		if err != nil {
			return nil, err
		}
		e, err := s.CreateEnclave(tee.EnclaveConfig{Name: "probe", Program: prog(), DataSize: 4096})
		if err != nil {
			return nil, err
		}
		enc := e.(*sgx.Enclave)
		if err := enc.WriteData(0, []byte{secret}); err != nil {
			return nil, err
		}
		out = append(out, &archProbe{arch: s, enclave: e,
			secretOff: enc.DataBase() - enc.Base(), secret: secret, attestKey: s.ReportKey()})
	}
	// Sanctum.
	{
		s, err := sanctum.New(platform.NewServer())
		if err != nil {
			return nil, err
		}
		e, err := s.CreateEnclave(tee.EnclaveConfig{Name: "probe", Program: prog(), DataSize: 4096})
		if err != nil {
			return nil, err
		}
		enc := e.(*sanctum.Enclave)
		if err := enc.WriteData(0, []byte{secret}); err != nil {
			return nil, err
		}
		out = append(out, &archProbe{arch: s, enclave: e,
			secretOff: enc.DataPage() - enc.Base(), secret: secret, attestKey: s.MonitorKey()})
	}
	// TrustZone.
	{
		tz, err := trustzone.New(platform.NewMobile())
		if err != nil {
			return nil, err
		}
		e, err := tz.CreateEnclave(tee.EnclaveConfig{Name: "probe", Program: prog()})
		if err != nil {
			return nil, err
		}
		enc := e.(*trustzone.Enclave)
		if err := enc.WriteData(0, []byte{secret}); err != nil {
			return nil, err
		}
		out = append(out, &archProbe{arch: tz, enclave: e,
			secretOff: enc.DataBase() - enc.Base(), secret: secret, attestKey: tz.DeviceKey()})
	}
	// Sanctuary.
	{
		tz, err := trustzone.New(platform.NewMobile())
		if err != nil {
			return nil, err
		}
		sy, err := sanctuary.New(tz)
		if err != nil {
			return nil, err
		}
		e, err := sy.CreateEnclave(tee.EnclaveConfig{Name: "probe", Program: prog(), DataSize: 4096})
		if err != nil {
			return nil, err
		}
		enc := e.(*sanctuary.Enclave)
		if err := enc.WriteData(0, []byte{secret}); err != nil {
			return nil, err
		}
		out = append(out, &archProbe{arch: sy, enclave: e,
			secretOff: enc.DataBase() - enc.Base(), secret: secret, attestKey: tz.DeviceKey()})
	}
	// SMART (no enclave).
	{
		s, err := smart.New(platform.NewEmbedded())
		if err != nil {
			return nil, err
		}
		out = append(out, &archProbe{arch: s, attestKey: s.Key(),
			notes: "attestation-only root of trust"})
	}
	// Sancus.
	{
		s, err := sancus.New(platform.NewEmbedded())
		if err != nil {
			return nil, err
		}
		m, err := s.RegisterModule(tee.EnclaveConfig{Name: "probe", Program: prog(), DataSize: 64}, 1)
		if err != nil {
			return nil, err
		}
		if err := s.Platform().Mem.WriteRaw(m.Base(), []byte{secret}); err != nil {
			return nil, err
		}
		out = append(out, &archProbe{arch: s, enclave: m, secretOff: 0, secret: secret})
	}
	// TrustLite.
	{
		tl, err := trustlite.New(platform.NewEmbedded())
		if err != nil {
			return nil, err
		}
		tr, err := tl.LoadTrustlet(tee.EnclaveConfig{Name: "probe", Program: prog(), DataSize: 64})
		if err != nil {
			return nil, err
		}
		if err := tr.WriteData(0, []byte{secret}); err != nil {
			return nil, err
		}
		tl.Boot()
		out = append(out, &archProbe{arch: tl, enclave: tr, secretOff: 0, secret: secret, attestKey: tl.PlatformKey()})
	}
	// TyTAN.
	{
		ty, err := tytan.New(platform.NewEmbedded())
		if err != nil {
			return nil, err
		}
		p := prog()
		sig, err := ty.SignImage(p.Segments[0].Data)
		if err != nil {
			return nil, err
		}
		tr, err := ty.LoadSignedTrustlet(tee.EnclaveConfig{Name: "probe", Program: p, DataSize: 64}, sig)
		if err != nil {
			return nil, err
		}
		if err := tr.WriteData(0, []byte{secret}); err != nil {
			return nil, err
		}
		ty.TrustLite().Boot()
		out = append(out, &archProbe{arch: ty, enclave: tr, secretOff: 0, secret: secret,
			attestKey: ty.TrustLite().PlatformKey()})
	}
	return out, nil
}

// Table2Architectures regenerates the Section 3 comparison matrix from
// live probes against all eight architecture implementations.
func Table2Architectures() (*Table, error) {
	probes, err := buildArchProbes()
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title: "TAB2 — architecture feature matrix (every cell measured by probe)",
		Columns: []string{"architecture", "class", "multi-enclave", "OS access", "DMA attack",
			"bus snoop", "cache defense", "attest", "seal", "real-time"},
	}
	for _, ap := range probes {
		caps := ap.arch.Capabilities()
		osCell, dmaCell, snoopCell := "n/a", "n/a", "n/a"
		if ap.enclave != nil {
			osCell = secure(tee.ProbeOSAccess(ap.arch, ap.enclave, ap.secretOff, ap.secret).Secure)
			dmaCell = secure(tee.ProbeDMA(ap.arch, ap.enclave, ap.secretOff, ap.secret).Secure)
			snoopCell = secure(tee.ProbeBusSnoop(ap.arch, ap.enclave, ap.secretOff, ap.secret).Secure)
		}
		attestCell := "-"
		if ap.enclave != nil && ap.attestKey != nil {
			if r, err := ap.enclave.Attest([]byte("tab2-nonce")); err == nil && attest.VerifyReport(ap.attestKey, r) {
				attestCell = "verified"
			} else {
				attestCell = "FAILED"
			}
		} else if caps.RemoteAttestation {
			attestCell = "verified" // SMART: verified in its dedicated flow below
		}
		sealCell := "-"
		if ap.enclave != nil {
			if blob, err := ap.enclave.Seal([]byte("x")); err == nil {
				if v, err := ap.enclave.Unseal(blob); err == nil && string(v) == "x" {
					sealCell = "works"
				}
			} else {
				sealCell = "-"
			}
		}
		t.Rows = append(t.Rows, []string{
			ap.arch.Name(), ap.arch.Class().String(), yn(caps.MultipleEnclaves),
			osCell, dmaCell, snoopCell, string(caps.CacheDefense),
			attestCell, sealCell, yn(caps.RealTime),
		})
	}
	t.Notes = append(t.Notes,
		"OS access / DMA attack / bus snoop: 'blocked' = probe could not read enclave plaintext",
		"SGX blocks the bus snoop via its MEE; Sanctum/TrustZone-family store plaintext DRAM",
		"SMART has no enclave: isolation probes not applicable; its PC-gated attestation is exercised in TAB5/examples")
	return t, nil
}

// Table3CacheSCA regenerates the Section 4.1 matrix: cache attacks versus
// the architectures' defenses, with measured key-nibble recovery.
func Table3CacheSCA(samples int) (*Table, error) {
	key := []byte("table3 secretkey")
	rng := rand.New(rand.NewSource(33))
	t := &Table{
		Title:   "TAB3 — cache side-channel attacks vs architectural defenses",
		Columns: []string{"attack", "defense (architecture)", "key nibbles (of 16)", "verdict"},
	}
	add := func(attack, defense string, res cachesca.Result) {
		verdict := "defense holds"
		switch {
		case res.Success:
			verdict = "ATTACK SUCCEEDS"
		case res.NibblesCorrect >= 4:
			verdict = "partial leak"
		}
		t.Rows = append(t.Rows, []string{attack, defense,
			fmt.Sprintf("%d", res.NibblesCorrect), verdict})
	}
	mkVictim := func(p *platform.Platform, domain int) (*cachesca.Victim, error) {
		return cachesca.NewVictim(p.Core(0).Hier, key, domain, 0x40000)
	}

	// Flush+Reload, no defense (SGX / TrustZone).
	{
		p := platform.NewServer()
		v, err := mkVictim(p, 5)
		if err != nil {
			return nil, err
		}
		add("flush+reload", "none (SGX, TrustZone)", cachesca.FlushReload(v, samples, 9, rng))
	}
	// Prime+Probe, no defense.
	{
		p := platform.NewServer()
		v, _ := mkVictim(p, 5)
		add("prime+probe", "none (SGX, TrustZone)", cachesca.PrimeProbe(v, p.LLC, samples, 9, rng))
	}
	// Prime+Probe vs LLC partitioning (Sanctum).
	{
		p := platform.NewServer()
		v, _ := mkVictim(p, 5)
		p.LLC.SetPartition(5, 0x00ff)
		p.LLC.SetPartition(9, 0xff00)
		add("prime+probe", "LLC partition (Sanctum)", cachesca.PrimeProbe(v, p.LLC, samples, 9, rng))
	}
	// Prime+Probe vs randomized mapping (RPcache-style [40]).
	{
		p := platform.NewServer()
		v, _ := mkVictim(p, 5)
		p.LLC.SetRandomizedIndex(5, 0xdecafbad)
		add("prime+probe", "randomized mapping [40]", cachesca.PrimeProbe(v, p.LLC, samples, 9, rng))
	}
	// Prime+Probe vs cache exclusion (Sanctuary).
	{
		p := platform.NewServer()
		v, _ := mkVictim(p, 5)
		p.Core(0).Hier.Cacheability = func(addr uint32) cache.Level {
			if addr >= 0x40000 && addr < 0x42000 {
				return cache.LevelL1
			}
			return cache.LevelAll
		}
		add("prime+probe", "cache exclusion (Sanctuary)", cachesca.PrimeProbe(v, p.LLC, samples, 9, rng))
	}
	// Evict+Time, no defense.
	{
		p := platform.NewServer()
		v, _ := mkVictim(p, 5)
		add("evict+time", "none (SGX, TrustZone)", cachesca.EvictTime(v, samples*8, rng))
	}
	// TLB attack on a shared TLB [15].
	{
		tlb := cache.NewTLB(32, 4)
		secret := []byte{0xA5, 0x3C}
		_, correct := cachesca.TLBAttack(tlb, secret, 1, 2)
		verdict := "defense holds"
		if correct >= 14 {
			verdict = "ATTACK SUCCEEDS"
		}
		t.Rows = append(t.Rows, []string{"tlb prime+probe", "shared TLB (all high-end)",
			fmt.Sprintf("%d/16 bits", correct), verdict})
	}
	// BTB branch shadowing [28].
	{
		pred := cpu.NewPredictor(1024, 256, 8)
		secret := []byte{0xC3, 0x5A}
		_, correct := cachesca.BranchShadow(pred, secret, 40)
		verdict := "defense holds"
		if correct >= 14 {
			verdict = "ATTACK SUCCEEDS"
		}
		t.Rows = append(t.Rows, []string{"btb shadowing", "shared predictor (SGX [28])",
			fmt.Sprintf("%d/16 bits", correct), verdict})
	}
	t.Notes = append(t.Notes,
		"success threshold: >=14/16 first-round key nibbles (the classic OST 64-bit reduction)",
		"embedded architectures have no shared caches: attacks not applicable (paper: 'none ... even considers cache side channels')")
	return t, nil
}

// Table4Transient regenerates the Section 4.2 matrix with measured
// extraction rates.
func Table4Transient(secretLen int) (*Table, error) {
	secret := []byte("TRANSIENT-SECRET")[:secretLen]
	t := &Table{
		Title:   "TAB4 — transient-execution attacks vs platform configurations",
		Columns: []string{"attack", "configuration", "bytes extracted", "verdict"},
	}
	add := func(res transient.Result, config string, err error) error {
		if err != nil {
			return err
		}
		verdict := "blocked"
		if res.Correct > len(res.Target)/2 {
			verdict = "LEAKS"
		}
		t.Rows = append(t.Rows, []string{res.Attack, config,
			fmt.Sprintf("%d/%d", res.Correct, len(res.Target)), verdict})
		return nil
	}
	r, err := transient.SpectreV1(cpu.HighEndFeatures(), secret, false)
	if err := add(r, "high-end speculative core", err); err != nil {
		return nil, err
	}
	r, err = transient.SpectreV1(cpu.HighEndFeatures(), secret, true)
	if err := add(r, "+ fence after bounds check", err); err != nil {
		return nil, err
	}
	r, err = transient.SpectreV1(cpu.EmbeddedFeatures(), secret, false)
	if err := add(r, "in-order embedded core", err); err != nil {
		return nil, err
	}
	r, err = transient.SpectreBTB(cpu.HighEndFeatures(), secret, false)
	if err := add(r, "shared VA-indexed BTB", err); err != nil {
		return nil, err
	}
	r, err = transient.SpectreBTB(cpu.HighEndFeatures(), secret, true)
	if err := add(r, "+ predictor flush (IBPB)", err); err != nil {
		return nil, err
	}
	r, err = transient.Ret2spec(cpu.HighEndFeatures(), secret)
	if err := add(r, "shared RSB", err); err != nil {
		return nil, err
	}
	r, err = transient.Meltdown(cpu.HighEndFeatures(), secret)
	if err := add(r, "fault-forwarding core", err); err != nil {
		return nil, err
	}
	feat := cpu.HighEndFeatures()
	feat.FaultForwarding = false
	r, err = transient.Meltdown(feat, secret)
	if err := add(r, "fixed silicon (no forwarding)", err); err != nil {
		return nil, err
	}
	// Foreshadow against SGX.
	{
		s, err := sgx.New(platform.NewServer())
		if err != nil {
			return nil, err
		}
		r, err = transient.ForeshadowSGX(s, secretLen, false)
		if err := add(r, "SGX + L1TF silicon (quoting key!)", err); err != nil {
			return nil, err
		}
	}
	{
		s, err := sgx.New(platform.NewServer())
		if err != nil {
			return nil, err
		}
		s.MitigateL1TF = true
		r, err = transient.ForeshadowSGX(s, secretLen, true)
		if err := add(r, "SGX + L1-flush mitigation", err); err != nil {
			return nil, err
		}
	}
	t.Notes = append(t.Notes,
		"SGX abort-page semantics stop plain Meltdown; Foreshadow bypasses them via a cleared present bit",
		"the Foreshadow rows extract the platform's ECDSA attestation scalar from the quoting enclave's EPC memory")
	return t, nil
}

// Table5Physical regenerates the Section 5 matrix.
func Table5Physical(quick bool) (*Table, error) {
	rng := rand.New(rand.NewSource(55))
	t := &Table{
		Title:   "TAB5 — classical physical attacks vs countermeasures",
		Columns: []string{"attack", "target / countermeasure", "cost", "verdict"},
	}
	// Kocher timing.
	mod := new(big.Int).Sub(new(big.Int).Lsh(big.NewInt(1), 61), big.NewInt(1))
	exp := big.NewInt(0xB6D5)
	nSamp := 600
	if quick {
		nSamp = 400
	}
	rec := physical.KocherTiming(physical.CollectTimingSamples(exp, mod, nSamp, rng), mod, exp.BitLen())
	t.Rows = append(t.Rows, []string{"timing [23]", "square-and-multiply RSA",
		fmt.Sprintf("%d timings", nSamp), leakIf(rec.Cmp(exp) == 0)})
	recL := physical.KocherTiming(physical.CollectLadderSamples(exp, mod, nSamp, rng), mod, exp.BitLen())
	t.Rows = append(t.Rows, []string{"timing [23]", "constant-time ladder",
		fmt.Sprintf("%d timings", nSamp), leakIf(recL.Cmp(exp) == 0)})

	// CPA / DPA / masking / hiding.
	key := []byte("tab5 aes key 016")
	cap := 2048
	if quick {
		cap = 1024
	}
	v, err := physical.NewUnprotectedAES(key)
	if err != nil {
		return nil, err
	}
	n, ok := physical.TracesToDisclosure(v, power.PowerProbe(0.8, 10), key, cap, rng)
	t.Rows = append(t.Rows, []string{"CPA [25,30]", "unprotected AES",
		fmt.Sprintf("%d traces", n), leakIf(ok)})
	mv, err := physical.NewMaskedAESVictim(key, 77)
	if err != nil {
		return nil, err
	}
	nM, okM := physical.TracesToDisclosure(mv, power.PowerProbe(0.8, 11), key, cap, rng)
	t.Rows = append(t.Rows, []string{"CPA [25,30]", "1st-order masking",
		fmt.Sprintf(">= %d traces (cap)", nM), leakIf(okM)})
	hidden := power.PowerProbe(0.8, 12)
	hidden.JitterMax = 6
	nH, okH := physical.TracesToDisclosure(v, hidden, key, cap, rng)
	hideCost := fmt.Sprintf("%d traces", nH)
	if !okH {
		hideCost = fmt.Sprintf(">= %d traces (cap)", nH)
	}
	t.Rows = append(t.Rows, []string{"CPA [25,30]", "hiding (random delays)", hideCost, leakIf(okH)})

	// EM variant.
	tsEM := physical.CollectTraces(v, power.EMProbe(0.8, 13), 1024, rng)
	emBytes := physical.CorrectBytes(physical.CPAKey(tsEM), key)
	t.Rows = append(t.Rows, []string{"EM analysis [14]", "unprotected AES",
		"1024 traces", leakIf(emBytes >= 14)})

	// DFA.
	oracle, err := physical.NewFaultOracle(key)
	if err != nil {
		return nil, err
	}
	got, faults, err := physical.PiretQuisquater(oracle, 2)
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{"DFA (Piret-Quisquater)", "unprotected AES",
		fmt.Sprintf("%d faulty ciphertexts", faults), leakIf(physical.CorrectBytes(got, key) == 16)})
	protected := physical.RedundantOracle(oracle)
	_, released := protected([]byte("DFA attack block"), &physical.FaultSpec{Round: 9, Pos: 0, XOR: 0x42})
	t.Rows = append(t.Rows, []string{"DFA (Piret-Quisquater)", "redundant computation",
		"faulty outputs suppressed", leakIf(released)})

	// Bellcore.
	rsaKey, err := softcrypto.GenerateRSA(512)
	if err != nil {
		return nil, err
	}
	msg := big.NewInt(0xFEEDC0FFEE)
	good := rsaKey.SignCRT(msg, nil)
	bad := rsaKey.SignCRT(msg, &softcrypto.CRTFault{Half: 0, XORMask: 2})
	_, _, okB := physical.Bellcore(rsaKey.N, good, bad)
	t.Rows = append(t.Rows, []string{"RSA-CRT fault [5]", "unprotected CRT signing",
		"1 faulty signature", leakIf(okB)})

	// Glitch campaign sweet spots.
	for _, kind := range []physical.GlitchKind{physical.GlitchClock, physical.GlitchVoltage, physical.GlitchEM, physical.GlitchOptical} {
		pts := physical.GlitchCampaign(kind, 21, 100, rng)
		s, faults := physical.BestGlitchStrength(pts)
		t.Rows = append(t.Rows, []string{fmt.Sprintf("glitch campaign (%v)", kind), "parameter sweep",
			fmt.Sprintf("sweet spot %.2f (%d faults/100)", s, faults), leakIf(faults > 0)})
	}

	// CLKSCREW end-to-end.
	ck, err := physical.CLKSCREW(42)
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{"CLKSCREW [37]", "TrustZone secure-world AES",
		fmt.Sprintf("OC to %d MHz, %d invocations", ck.OverclockMHz, ck.Invocations),
		leakIf(ck.Success)})
	t.Rows = append(t.Rows, []string{"CLKSCREW [37]", "nominal operating point",
		fmt.Sprintf("%d faults in 20 runs", ck.NominalFaults), leakIf(ck.NominalFaults > 0)})

	t.Notes = append(t.Notes,
		"masking/hiding verdicts at the trace cap; 'blocked' = key not recovered within budget",
		"CLKSCREW needs no access-control violation: only the kernel-reachable DVFS regulator")
	return t, nil
}

func leakIf(b bool) string {
	if b {
		return "KEY RECOVERED"
	}
	return "blocked"
}
