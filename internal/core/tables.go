package core

import (
	"context"
	"fmt"
	"math/big"

	"github.com/intrust-sim/intrust/internal/attack/cachesca"
	"github.com/intrust-sim/intrust/internal/attack/physical"
	"github.com/intrust-sim/intrust/internal/attack/transient"
	"github.com/intrust-sim/intrust/internal/attest"
	"github.com/intrust-sim/intrust/internal/cache"
	"github.com/intrust-sim/intrust/internal/cpu"
	"github.com/intrust-sim/intrust/internal/engine"
	"github.com/intrust-sim/intrust/internal/isa"
	"github.com/intrust-sim/intrust/internal/platform"
	"github.com/intrust-sim/intrust/internal/power"
	"github.com/intrust-sim/intrust/internal/scenario"
	"github.com/intrust-sim/intrust/internal/softcrypto"
	"github.com/intrust-sim/intrust/internal/tee"
	"github.com/intrust-sim/intrust/internal/tee/sanctuary"
	"github.com/intrust-sim/intrust/internal/tee/sanctum"
	"github.com/intrust-sim/intrust/internal/tee/sancus"
	"github.com/intrust-sim/intrust/internal/tee/sgx"
	"github.com/intrust-sim/intrust/internal/tee/smart"
	"github.com/intrust-sim/intrust/internal/tee/trustlite"
	"github.com/intrust-sim/intrust/internal/tee/trustzone"
	"github.com/intrust-sim/intrust/internal/tee/tytan"
)

// runTable fans the experiments out on the engine and assembles their
// emitted rows, in submission order, into a rendered table.
func runTable(title string, columns []string, exps []engine.Experiment, notes ...string) (*Table, error) {
	results, err := engine.New(0).Run(context.Background(), exps)
	if err != nil {
		return nil, err
	}
	t := &Table{Title: title, Columns: columns, Notes: notes}
	for i := range results {
		t.Rows = append(t.Rows, results[i].Rows...)
	}
	return t, nil
}

// enclaveProgram is the common single-page enclave image used by probes.
const enclaveProgram = ".org 0\nhlt"

// archProbe holds one architecture instance prepared with a secret-bearing
// enclave (where the architecture supports one).
type archProbe struct {
	arch      tee.Architecture
	enclave   tee.Enclave
	secretOff uint32
	secret    byte
	attestKey []byte
	notes     string
}

// archBuilder constructs one architecture probe. Each TAB2 experiment
// builds its own probe on its own platform instance, so the eight probes
// run concurrently without sharing state.
type archBuilder struct {
	key   string
	build func() (*archProbe, error)
}

func archBuilders() []archBuilder {
	secret := byte(0x5C)
	prog := func() *isa.Program { return isa.MustAssemble(enclaveProgram) }
	return []archBuilder{
		{"sgx", func() (*archProbe, error) {
			s, err := sgx.New(platform.NewServer())
			if err != nil {
				return nil, err
			}
			e, err := s.CreateEnclave(tee.EnclaveConfig{Name: "probe", Program: prog(), DataSize: 4096})
			if err != nil {
				return nil, err
			}
			enc := e.(*sgx.Enclave)
			if err := enc.WriteData(0, []byte{secret}); err != nil {
				return nil, err
			}
			return &archProbe{arch: s, enclave: e,
				secretOff: enc.DataBase() - enc.Base(), secret: secret, attestKey: s.ReportKey()}, nil
		}},
		{"sanctum", func() (*archProbe, error) {
			s, err := sanctum.New(platform.NewServer())
			if err != nil {
				return nil, err
			}
			e, err := s.CreateEnclave(tee.EnclaveConfig{Name: "probe", Program: prog(), DataSize: 4096})
			if err != nil {
				return nil, err
			}
			enc := e.(*sanctum.Enclave)
			if err := enc.WriteData(0, []byte{secret}); err != nil {
				return nil, err
			}
			return &archProbe{arch: s, enclave: e,
				secretOff: enc.DataPage() - enc.Base(), secret: secret, attestKey: s.MonitorKey()}, nil
		}},
		{"trustzone", func() (*archProbe, error) {
			tz, err := trustzone.New(platform.NewMobile())
			if err != nil {
				return nil, err
			}
			e, err := tz.CreateEnclave(tee.EnclaveConfig{Name: "probe", Program: prog()})
			if err != nil {
				return nil, err
			}
			enc := e.(*trustzone.Enclave)
			if err := enc.WriteData(0, []byte{secret}); err != nil {
				return nil, err
			}
			return &archProbe{arch: tz, enclave: e,
				secretOff: enc.DataBase() - enc.Base(), secret: secret, attestKey: tz.DeviceKey()}, nil
		}},
		{"sanctuary", func() (*archProbe, error) {
			tz, err := trustzone.New(platform.NewMobile())
			if err != nil {
				return nil, err
			}
			sy, err := sanctuary.New(tz)
			if err != nil {
				return nil, err
			}
			e, err := sy.CreateEnclave(tee.EnclaveConfig{Name: "probe", Program: prog(), DataSize: 4096})
			if err != nil {
				return nil, err
			}
			enc := e.(*sanctuary.Enclave)
			if err := enc.WriteData(0, []byte{secret}); err != nil {
				return nil, err
			}
			return &archProbe{arch: sy, enclave: e,
				secretOff: enc.DataBase() - enc.Base(), secret: secret, attestKey: tz.DeviceKey()}, nil
		}},
		{"smart", func() (*archProbe, error) {
			s, err := smart.New(platform.NewEmbedded())
			if err != nil {
				return nil, err
			}
			return &archProbe{arch: s, attestKey: s.Key(),
				notes: "attestation-only root of trust"}, nil
		}},
		{"sancus", func() (*archProbe, error) {
			s, err := sancus.New(platform.NewEmbedded())
			if err != nil {
				return nil, err
			}
			m, err := s.RegisterModule(tee.EnclaveConfig{Name: "probe", Program: prog(), DataSize: 64}, 1)
			if err != nil {
				return nil, err
			}
			if err := s.Platform().Mem.WriteRaw(m.Base(), []byte{secret}); err != nil {
				return nil, err
			}
			return &archProbe{arch: s, enclave: m, secretOff: 0, secret: secret}, nil
		}},
		{"trustlite", func() (*archProbe, error) {
			tl, err := trustlite.New(platform.NewEmbedded())
			if err != nil {
				return nil, err
			}
			tr, err := tl.LoadTrustlet(tee.EnclaveConfig{Name: "probe", Program: prog(), DataSize: 64})
			if err != nil {
				return nil, err
			}
			if err := tr.WriteData(0, []byte{secret}); err != nil {
				return nil, err
			}
			tl.Boot()
			return &archProbe{arch: tl, enclave: tr, secretOff: 0, secret: secret, attestKey: tl.PlatformKey()}, nil
		}},
		{"tytan", func() (*archProbe, error) {
			ty, err := tytan.New(platform.NewEmbedded())
			if err != nil {
				return nil, err
			}
			p := prog()
			sig, err := ty.SignImage(p.Segments[0].Data)
			if err != nil {
				return nil, err
			}
			tr, err := ty.LoadSignedTrustlet(tee.EnclaveConfig{Name: "probe", Program: p, DataSize: 64}, sig)
			if err != nil {
				return nil, err
			}
			if err := tr.WriteData(0, []byte{secret}); err != nil {
				return nil, err
			}
			ty.TrustLite().Boot()
			return &archProbe{arch: ty, enclave: tr, secretOff: 0, secret: secret,
				attestKey: ty.TrustLite().PlatformKey()}, nil
		}},
	}
}

// probeRow executes the TAB2 probe battery against one architecture and
// renders its table row.
func probeRow(ap *archProbe) []string {
	caps := ap.arch.Capabilities()
	osCell, dmaCell, snoopCell := "n/a", "n/a", "n/a"
	if ap.enclave != nil {
		osCell = secure(tee.ProbeOSAccess(ap.arch, ap.enclave, ap.secretOff, ap.secret).Secure)
		dmaCell = secure(tee.ProbeDMA(ap.arch, ap.enclave, ap.secretOff, ap.secret).Secure)
		snoopCell = secure(tee.ProbeBusSnoop(ap.arch, ap.enclave, ap.secretOff, ap.secret).Secure)
	}
	attestCell := "-"
	if ap.enclave != nil && ap.attestKey != nil {
		if r, err := ap.enclave.Attest([]byte("tab2-nonce")); err == nil && attest.VerifyReport(ap.attestKey, r) {
			attestCell = "verified"
		} else {
			attestCell = "FAILED"
		}
	} else if caps.RemoteAttestation {
		// SMART has no enclave to attest here; its PC-gated attestation
		// is exercised in TAB5 and examples/attestation (see table note).
		attestCell = "verified"
	}
	sealCell := "-"
	if ap.enclave != nil {
		if blob, err := ap.enclave.Seal([]byte("x")); err == nil {
			if v, err := ap.enclave.Unseal(blob); err == nil && string(v) == "x" {
				sealCell = "works"
			}
		}
	}
	return []string{
		ap.arch.Name(), ap.arch.Class().String(), yn(caps.MultipleEnclaves),
		osCell, dmaCell, snoopCell, string(caps.CacheDefense),
		attestCell, sealCell, yn(caps.RealTime),
	}
}

// Table2Architectures regenerates the Section 3 comparison matrix from
// live probes against all eight architecture implementations, one engine
// job per architecture.
func Table2Architectures() (*Table, error) {
	var exps []engine.Experiment
	for _, b := range archBuilders() {
		build := b.build
		exps = append(exps, engine.Experiment{
			Name: "tab2/" + b.key, Arch: b.key, Attack: "probe",
			Run: func(*engine.Ctx) (engine.Outcome, error) {
				ap, err := build()
				if err != nil {
					return engine.Outcome{}, err
				}
				row := probeRow(ap)
				return engine.Outcome{Rows: [][]string{row}, Verdict: row[3]}, nil
			},
		})
	}
	return runTable(
		"TAB2 — architecture feature matrix (every cell measured by probe)",
		[]string{"architecture", "class", "multi-enclave", "OS access", "DMA attack",
			"bus snoop", "cache defense", "attest", "seal", "real-time"},
		exps,
		"OS access / DMA attack / bus snoop: 'blocked' = probe could not read enclave plaintext",
		"SGX blocks the bus snoop via its MEE; Sanctum/TrustZone-family store plaintext DRAM",
		"SMART has no enclave: isolation probes not applicable; its PC-gated attestation is exercised in TAB5/examples")
}

// cacheVerdict grades a cache-attack result with the scenario layer's
// shared grader, so TAB3 and sweep verdicts can never drift apart.
var cacheVerdict = scenario.CacheVerdict

func cacheRow(attack, defense string, res cachesca.Result) engine.Outcome {
	return engine.Outcome{
		Rows:    [][]string{{attack, defense, fmt.Sprintf("%d", res.NibblesCorrect), cacheVerdict(res)}},
		Metrics: map[string]float64{"key_nibbles": float64(res.NibblesCorrect)},
		Verdict: cacheVerdict(res),
	}
}

// table3Experiments enumerates the Section 4.1 attack×defense pairs.
func table3Experiments(samples int) []engine.Experiment {
	key := []byte("table3 secretkey")
	// aesExp builds one cache-attack experiment against the T-table AES
	// victim (domain 5, tables at 0x40000, attacker domain 9): fresh
	// server platform, victim, optional defense setup, then the mount.
	aesExp := func(name, attack, defense string, setup func(*platform.Platform),
		mount func(ctx *engine.Ctx, v *cachesca.Victim, p *platform.Platform) cachesca.Result) engine.Experiment {
		return engine.Experiment{
			Name: "tab3/" + name, Attack: "cachesca", Samples: samples, Seed: 33,
			Run: func(ctx *engine.Ctx) (engine.Outcome, error) {
				p := platform.NewServer()
				v, err := cachesca.NewVictim(p.Core(0).Hier, key, 5, 0x40000)
				if err != nil {
					return engine.Outcome{}, err
				}
				if setup != nil {
					setup(p)
				}
				return cacheRow(attack, defense, mount(ctx, v, p)), nil
			},
		}
	}
	primeProbe := func(ctx *engine.Ctx, v *cachesca.Victim, p *platform.Platform) cachesca.Result {
		return cachesca.PrimeProbe(v, p.LLC, ctx.Samples, 9, ctx.RNG)
	}
	return []engine.Experiment{
		aesExp("flush-reload", "flush+reload", "none (SGX, TrustZone)", nil,
			func(ctx *engine.Ctx, v *cachesca.Victim, _ *platform.Platform) cachesca.Result {
				return cachesca.FlushReload(v, ctx.Samples, 9, ctx.RNG)
			}),
		aesExp("prime-probe", "prime+probe", "none (SGX, TrustZone)", nil, primeProbe),
		aesExp("prime-probe-partition", "prime+probe", "LLC partition (Sanctum)",
			func(p *platform.Platform) {
				p.LLC.SetPartition(5, 0x00ff)
				p.LLC.SetPartition(9, 0xff00)
			}, primeProbe),
		aesExp("prime-probe-randomized", "prime+probe", "randomized mapping [40]",
			func(p *platform.Platform) { p.LLC.SetRandomizedIndex(5, 0xdecafbad) }, primeProbe),
		aesExp("prime-probe-exclusion", "prime+probe", "cache exclusion (Sanctuary)",
			func(p *platform.Platform) {
				p.Core(0).Hier.Cacheability = func(addr uint32) cache.Level {
					if addr >= 0x40000 && addr < 0x42000 {
						return cache.LevelL1
					}
					return cache.LevelAll
				}
			}, primeProbe),
		aesExp("evict-time", "evict+time", "none (SGX, TrustZone)", nil,
			func(ctx *engine.Ctx, v *cachesca.Victim, _ *platform.Platform) cachesca.Result {
				return cachesca.EvictTime(v, ctx.Samples*8, ctx.RNG)
			}),
		{Name: "tab3/tlb", Attack: "cachesca", Samples: samples,
			Run: func(*engine.Ctx) (engine.Outcome, error) {
				tlb := cache.NewTLB(32, 4)
				_, correct := cachesca.TLBAttack(tlb, []byte{0xA5, 0x3C}, 1, 2)
				return bitRecoveryRow("tlb prime+probe", "shared TLB (all high-end)", correct), nil
			}},
		{Name: "tab3/btb", Attack: "cachesca", Samples: samples,
			Run: func(*engine.Ctx) (engine.Outcome, error) {
				pred := cpu.NewPredictor(1024, 256, 8)
				_, correct := cachesca.BranchShadow(pred, []byte{0xC3, 0x5A}, 40)
				return bitRecoveryRow("btb shadowing", "shared predictor (SGX [28])", correct), nil
			}},
	}
}

// bitRecoveryRow grades a bit-recovery channel (TLB, BTB) against the
// same >=14/16 threshold as the key-nibble attacks.
func bitRecoveryRow(attack, defense string, correct int) engine.Outcome {
	verdict := "defense holds"
	if correct >= 14 {
		verdict = "ATTACK SUCCEEDS"
	}
	return engine.Outcome{
		Rows: [][]string{{attack, defense,
			fmt.Sprintf("%d/16 bits", correct), verdict}},
		Metrics: map[string]float64{"bits": float64(correct)},
		Verdict: verdict,
	}
}

// Table3CacheSCA regenerates the Section 4.1 matrix: cache attacks versus
// the architectures' defenses, with measured key-nibble recovery.
func Table3CacheSCA(samples int) (*Table, error) {
	return runTable(
		"TAB3 — cache side-channel attacks vs architectural defenses",
		[]string{"attack", "defense (architecture)", "key nibbles (of 16)", "verdict"},
		table3Experiments(samples),
		"success threshold: >=14/16 first-round key nibbles (the classic OST 64-bit reduction)",
		"embedded architectures have no shared caches: attacks not applicable (paper: 'none ... even considers cache side channels')")
}

// transientRow grades one transient-execution result with the scenario
// layer's shared grader.
func transientRow(res transient.Result, config string) engine.Outcome {
	verdict := scenario.TransientVerdict(res)
	return engine.Outcome{
		Rows:    [][]string{{res.Attack, config, fmt.Sprintf("%d/%d", res.Correct, len(res.Target)), verdict}},
		Metrics: map[string]float64{"bytes_extracted": float64(res.Correct)},
		Verdict: verdict,
	}
}

// table4Experiments enumerates the Section 4.2 attack×configuration pairs.
func table4Experiments(secretLen int) []engine.Experiment {
	secret := []byte("TRANSIENT-SECRET")[:secretLen]
	simple := func(name, config string, run func() (transient.Result, error)) engine.Experiment {
		return engine.Experiment{
			Name: "tab4/" + name, Attack: "transient", Samples: secretLen,
			Run: func(*engine.Ctx) (engine.Outcome, error) {
				r, err := run()
				if err != nil {
					return engine.Outcome{}, err
				}
				return transientRow(r, config), nil
			},
		}
	}
	return []engine.Experiment{
		simple("spectre-v1", "high-end speculative core", func() (transient.Result, error) {
			return transient.SpectreV1(cpu.HighEndFeatures(), secret, false)
		}),
		simple("spectre-v1-fence", "+ fence after bounds check", func() (transient.Result, error) {
			return transient.SpectreV1(cpu.HighEndFeatures(), secret, true)
		}),
		simple("spectre-v1-inorder", "in-order embedded core", func() (transient.Result, error) {
			return transient.SpectreV1(cpu.EmbeddedFeatures(), secret, false)
		}),
		simple("spectre-btb", "shared VA-indexed BTB", func() (transient.Result, error) {
			return transient.SpectreBTB(cpu.HighEndFeatures(), secret, false)
		}),
		simple("spectre-btb-ibpb", "+ predictor flush (IBPB)", func() (transient.Result, error) {
			return transient.SpectreBTB(cpu.HighEndFeatures(), secret, true)
		}),
		simple("ret2spec", "shared RSB", func() (transient.Result, error) {
			return transient.Ret2spec(cpu.HighEndFeatures(), secret)
		}),
		simple("meltdown", "fault-forwarding core", func() (transient.Result, error) {
			return transient.Meltdown(cpu.HighEndFeatures(), secret)
		}),
		simple("meltdown-fixed", "fixed silicon (no forwarding)", func() (transient.Result, error) {
			feat := cpu.HighEndFeatures()
			feat.FaultForwarding = false
			return transient.Meltdown(feat, secret)
		}),
		simple("foreshadow", "SGX + L1TF silicon (quoting key!)", func() (transient.Result, error) {
			s, err := sgx.New(platform.NewServer())
			if err != nil {
				return transient.Result{}, err
			}
			return transient.ForeshadowSGX(s, secretLen, false)
		}),
		simple("foreshadow-mitigated", "SGX + L1-flush mitigation", func() (transient.Result, error) {
			s, err := sgx.New(platform.NewServer())
			if err != nil {
				return transient.Result{}, err
			}
			s.MitigateL1TF = true
			return transient.ForeshadowSGX(s, secretLen, true)
		}),
	}
}

// Table4Transient regenerates the Section 4.2 matrix with measured
// extraction rates.
func Table4Transient(secretLen int) (*Table, error) {
	return runTable(
		"TAB4 — transient-execution attacks vs platform configurations",
		[]string{"attack", "configuration", "bytes extracted", "verdict"},
		table4Experiments(secretLen),
		"SGX abort-page semantics stop plain Meltdown; Foreshadow bypasses them via a cleared present bit",
		"the Foreshadow rows extract the platform's ECDSA attestation scalar from the quoting enclave's EPC memory")
}

// kocherRecovers is the scenario layer's shared Kocher victim (61-bit
// modexp, fixed exponent): TAB5 and the sweep's kocher-timing cells
// measure the same attack by construction.
var kocherRecovers = scenario.KocherRecovers

// table5Experiments enumerates the Section 5 attack×countermeasure pairs.
func table5Experiments(quick bool) []engine.Experiment {
	nSamp := 600
	cap := 2048
	if quick {
		nSamp = 400
		cap = 1024
	}
	key := []byte("tab5 aes key 016")
	exps := []engine.Experiment{
		{Name: "tab5/timing-sqm", Attack: "physical", Samples: nSamp, Seed: 55,
			Run: func(ctx *engine.Ctx) (engine.Outcome, error) {
				ok := kocherRecovers(physical.CollectTimingSamples, ctx.Samples, ctx.RNG)
				return engine.Outcome{
					Rows: [][]string{{"timing [23]", "square-and-multiply RSA",
						fmt.Sprintf("%d timings", ctx.Samples), leakIf(ok)}},
					Verdict: leakIf(ok),
				}, nil
			}},
		{Name: "tab5/timing-ladder", Attack: "physical", Samples: nSamp, Seed: 55,
			Run: func(ctx *engine.Ctx) (engine.Outcome, error) {
				ok := kocherRecovers(physical.CollectLadderSamples, ctx.Samples, ctx.RNG)
				return engine.Outcome{
					Rows: [][]string{{"timing [23]", "constant-time ladder",
						fmt.Sprintf("%d timings", ctx.Samples), leakIf(ok)}},
					Verdict: leakIf(ok),
				}, nil
			}},
		{Name: "tab5/cpa-unprotected", Attack: "physical", Samples: cap, Seed: 55,
			Run: func(ctx *engine.Ctx) (engine.Outcome, error) {
				v, err := physical.NewUnprotectedAES(key)
				if err != nil {
					return engine.Outcome{}, err
				}
				n, ok := physical.TracesToDisclosure(v, power.PowerProbe(0.8, 10), key, ctx.Samples, ctx.RNG)
				return engine.Outcome{
					Rows: [][]string{{"CPA [25,30]", "unprotected AES",
						fmt.Sprintf("%d traces", n), leakIf(ok)}},
					Metrics: map[string]float64{"traces_to_disclosure": float64(n)},
					Verdict: leakIf(ok),
				}, nil
			}},
		{Name: "tab5/cpa-masked", Attack: "physical", Samples: cap, Seed: 55,
			Run: func(ctx *engine.Ctx) (engine.Outcome, error) {
				mv, err := physical.NewMaskedAESVictim(key, 77)
				if err != nil {
					return engine.Outcome{}, err
				}
				n, ok := physical.TracesToDisclosure(mv, power.PowerProbe(0.8, 11), key, ctx.Samples, ctx.RNG)
				return engine.Outcome{
					Rows: [][]string{{"CPA [25,30]", "1st-order masking",
						fmt.Sprintf(">= %d traces (cap)", n), leakIf(ok)}},
					Metrics: map[string]float64{"traces_to_disclosure": float64(n)},
					Verdict: leakIf(ok),
				}, nil
			}},
		{Name: "tab5/cpa-hiding", Attack: "physical", Samples: cap, Seed: 55,
			Run: func(ctx *engine.Ctx) (engine.Outcome, error) {
				v, err := physical.NewUnprotectedAES(key)
				if err != nil {
					return engine.Outcome{}, err
				}
				hidden := power.PowerProbe(0.8, 12)
				hidden.JitterMax = 6
				n, ok := physical.TracesToDisclosure(v, hidden, key, ctx.Samples, ctx.RNG)
				cost := fmt.Sprintf("%d traces", n)
				if !ok {
					cost = fmt.Sprintf(">= %d traces (cap)", n)
				}
				return engine.Outcome{
					Rows:    [][]string{{"CPA [25,30]", "hiding (random delays)", cost, leakIf(ok)}},
					Metrics: map[string]float64{"traces_to_disclosure": float64(n)},
					Verdict: leakIf(ok),
				}, nil
			}},
		{Name: "tab5/em", Attack: "physical", Samples: 1024, Seed: 55,
			Run: func(ctx *engine.Ctx) (engine.Outcome, error) {
				v, err := physical.NewUnprotectedAES(key)
				if err != nil {
					return engine.Outcome{}, err
				}
				ts := physical.CollectTraces(v, power.EMProbe(0.8, 13), ctx.Samples, ctx.RNG)
				emBytes := physical.CorrectBytes(physical.CPAKey(ts), key)
				return engine.Outcome{
					Rows: [][]string{{"EM analysis [14]", "unprotected AES",
						fmt.Sprintf("%d traces", ctx.Samples), leakIf(emBytes >= 14)}},
					Metrics: map[string]float64{"key_bytes": float64(emBytes)},
					Verdict: leakIf(emBytes >= 14),
				}, nil
			}},
		{Name: "tab5/dfa", Attack: "physical",
			Run: func(*engine.Ctx) (engine.Outcome, error) {
				oracle, err := physical.NewFaultOracle(key)
				if err != nil {
					return engine.Outcome{}, err
				}
				got, faults, err := physical.PiretQuisquater(oracle, 2)
				if err != nil {
					return engine.Outcome{}, err
				}
				ok := physical.CorrectBytes(got, key) == 16
				return engine.Outcome{
					Rows: [][]string{{"DFA (Piret-Quisquater)", "unprotected AES",
						fmt.Sprintf("%d faulty ciphertexts", faults), leakIf(ok)}},
					Metrics: map[string]float64{"faulty_ciphertexts": float64(faults)},
					Verdict: leakIf(ok),
				}, nil
			}},
		{Name: "tab5/dfa-redundant", Attack: "physical",
			Run: func(*engine.Ctx) (engine.Outcome, error) {
				oracle, err := physical.NewFaultOracle(key)
				if err != nil {
					return engine.Outcome{}, err
				}
				protected := physical.RedundantOracle(oracle)
				_, released := protected([]byte("DFA attack block"), &physical.FaultSpec{Round: 9, Pos: 0, XOR: 0x42})
				return engine.Outcome{
					Rows: [][]string{{"DFA (Piret-Quisquater)", "redundant computation",
						"faulty outputs suppressed", leakIf(released)}},
					Verdict: leakIf(released),
				}, nil
			}},
		{Name: "tab5/bellcore", Attack: "physical",
			Run: func(*engine.Ctx) (engine.Outcome, error) {
				rsaKey, err := softcrypto.GenerateRSA(512)
				if err != nil {
					return engine.Outcome{}, err
				}
				msg := big.NewInt(0xFEEDC0FFEE)
				good := rsaKey.SignCRT(msg, nil)
				bad := rsaKey.SignCRT(msg, &softcrypto.CRTFault{Half: 0, XORMask: 2})
				_, _, ok := physical.Bellcore(rsaKey.N, good, bad)
				return engine.Outcome{
					Rows: [][]string{{"RSA-CRT fault [5]", "unprotected CRT signing",
						"1 faulty signature", leakIf(ok)}},
					Verdict: leakIf(ok),
				}, nil
			}},
	}
	for _, kind := range []physical.GlitchKind{physical.GlitchClock, physical.GlitchVoltage, physical.GlitchEM, physical.GlitchOptical} {
		kind := kind
		exps = append(exps, engine.Experiment{
			Name: fmt.Sprintf("tab5/glitch-%v", kind), Attack: "physical", Seed: 55,
			Run: func(ctx *engine.Ctx) (engine.Outcome, error) {
				pts := physical.GlitchCampaign(kind, 21, 100, ctx.RNG)
				s, faults := physical.BestGlitchStrength(pts)
				return engine.Outcome{
					Rows: [][]string{{fmt.Sprintf("glitch campaign (%v)", kind), "parameter sweep",
						fmt.Sprintf("sweet spot %.2f (%d faults/100)", s, faults), leakIf(faults > 0)}},
					Metrics: map[string]float64{"sweet_spot": s, "faults_per_100": float64(faults)},
					Verdict: leakIf(faults > 0),
				}, nil
			},
		})
	}
	exps = append(exps, engine.Experiment{
		Name: "tab5/clkscrew", Attack: "physical", Seed: 42,
		Run: func(ctx *engine.Ctx) (engine.Outcome, error) {
			ck, err := physical.CLKSCREW(ctx.Seed)
			if err != nil {
				return engine.Outcome{}, err
			}
			return engine.Outcome{
				Rows: [][]string{
					{"CLKSCREW [37]", "TrustZone secure-world AES",
						fmt.Sprintf("OC to %d MHz, %d invocations", ck.OverclockMHz, ck.Invocations),
						leakIf(ck.Success)},
					{"CLKSCREW [37]", "nominal operating point",
						fmt.Sprintf("%d faults in 20 runs", ck.NominalFaults), leakIf(ck.NominalFaults > 0)},
				},
				Metrics: map[string]float64{"overclock_mhz": float64(ck.OverclockMHz), "invocations": float64(ck.Invocations)},
				Verdict: leakIf(ck.Success),
			}, nil
		},
	})
	return exps
}

// Table5Physical regenerates the Section 5 matrix.
func Table5Physical(quick bool) (*Table, error) {
	return runTable(
		"TAB5 — classical physical attacks vs countermeasures",
		[]string{"attack", "target / countermeasure", "cost", "verdict"},
		table5Experiments(quick),
		"masking/hiding verdicts at the trace cap; 'blocked' = key not recovered within budget",
		"CLKSCREW needs no access-control violation: only the kernel-reachable DVFS regulator")
}

// leakIf is the physical suite's verdict convention, shared with the
// scenario layer.
var leakIf = scenario.LeakIf
