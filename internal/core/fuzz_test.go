package core

import (
	"strings"
	"testing"

	"github.com/intrust-sim/intrust/internal/scenario"
)

// Fuzz targets for the sweep's axis-token parsers. The axes accept
// hostile input directly from the CLI (-arch/-attack/-defense), so the
// parsers must reject anything unknown with an error — never panic —
// and every accepted selection must be well-formed: no duplicates, no
// empty entries, only registered names.

// splitTokens turns raw fuzz input into an axis list the way the CLI
// does: comma-separated, whitespace trimmed, empties dropped — plus the
// raw string as one extra token so unsplit junk reaches the parsers too.
func splitTokens(raw string) []string {
	toks := []string{raw}
	for _, v := range strings.Split(raw, ",") {
		if v = strings.TrimSpace(v); v != "" {
			toks = append(toks, v)
		}
	}
	return toks
}

func FuzzExpandAxis(f *testing.F) {
	for _, seed := range []string{"", "all", "ALL", "sgx", "SGX,sancus", "sgx,sgx", "enigma", " sgx ,", "all,enigma", ","} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, raw string) {
		out, err := expandAxis(splitTokens(raw), AllArchitectures, "architecture")
		if err != nil {
			return
		}
		if len(out) == 0 {
			t.Fatalf("expandAxis(%q) accepted an empty selection", raw)
		}
		seen := map[string]bool{}
		known := map[string]bool{}
		for _, a := range AllArchitectures {
			known[a] = true
		}
		for _, v := range out {
			if !known[v] {
				t.Fatalf("expandAxis(%q) emitted unknown architecture %q", raw, v)
			}
			if seen[v] {
				t.Fatalf("expandAxis(%q) emitted duplicate %q", raw, v)
			}
			seen[v] = true
		}
	})
}

func FuzzExpandScenarios(f *testing.F) {
	for _, seed := range []string{"", "all", "cachesca", "CACHESCA,flush+reload", "flush+reload,flush+reload",
		"rowhammer", "physical,clkscrew", "transient, ", "+", "evict+time"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, raw string) {
		out, err := expandScenarios(splitTokens(raw))
		if err != nil {
			return
		}
		if len(out) == 0 {
			t.Fatalf("expandScenarios(%q) accepted an empty selection", raw)
		}
		seen := map[string]bool{}
		for _, s := range out {
			if _, ok := scenario.Lookup(s.Name()); !ok {
				t.Fatalf("expandScenarios(%q) emitted unregistered scenario %q", raw, s.Name())
			}
			if seen[s.Name()] {
				t.Fatalf("expandScenarios(%q) emitted duplicate %q", raw, s.Name())
			}
			seen[s.Name()] = true
		}
	})
}

func FuzzExpandDefenses(f *testing.F) {
	for _, seed := range []string{"", "all", "none", "stock", "NONE,Stock", "way-partition",
		"ct-aes+clock-jitter", "clock-jitter+CT-AES", "ct-aes+ct-aes", "moat", "+", "++", "a+", "none,all,stock",
		"way-partition+moat", " way-partition , none "} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, raw string) {
		out, err := expandDefenses(splitTokens(raw))
		if err != nil {
			return
		}
		if len(out) == 0 {
			t.Fatalf("expandDefenses(%q) accepted an empty selection", raw)
		}
		seen := map[string]bool{}
		for _, sel := range out {
			if sel.label == "" {
				t.Fatalf("expandDefenses(%q) emitted an unlabeled selection", raw)
			}
			if seen[sel.label] {
				t.Fatalf("expandDefenses(%q) emitted duplicate selection %q", raw, sel.label)
			}
			seen[sel.label] = true
			// A named selection's label must be canonical: the sorted
			// lower-cased resolved names — the property that collapses
			// permuted "+"-combinations into one grid cell.
			if !sel.stock && sel.label != "none" {
				if want := resolvedKey(sel.defs); sel.label != want {
					t.Fatalf("expandDefenses(%q): selection label %q, want canonical %q", raw, sel.label, want)
				}
				for _, d := range sel.defs {
					if d == nil {
						t.Fatalf("expandDefenses(%q) emitted a nil defense", raw)
					}
				}
			}
		}
	})
}
