// Package core is the paper's primary contribution rebuilt as an
// executable artifact: the cross-spectrum comparative evaluation of
// hardware-assisted security architectures. It drives the platform
// models, the eight TEE implementations and the three attack families,
// and regenerates the paper's figure and implicit comparison tables from
// measurement:
//
//	FIG1 — adversary-model and requirement importance across platforms
//	TAB2 — architecture feature matrix (Section 3)
//	TAB3 — cache side-channel attacks vs defenses (Section 4.1)
//	TAB4 — transient-execution attacks vs configurations (Section 4.2)
//	TAB5 — classical physical attacks vs countermeasures (Section 5)
//
// Every cell is traceable to an experiment run in this process. Since the
// engine rework, each cell is one engine.Experiment: the generators
// enumerate their measurements and fan them out on internal/engine's
// worker pool (deterministically seeded, so results are identical at any
// parallelism). The sweep in sweep.go enumerates the internal/scenario
// registry against every architecture — each registered attack variant
// times each of the eight architectures, with not-applicable cells
// reporting the paper's reason — and exposes the grid to the CLI.
package core

import (
	"fmt"
	"strings"
)

// Level is a qualitative importance/applicability level, matching the
// three shading levels of the paper's Figure 1.
type Level uint8

const (
	// LevelLow renders lightly shaded.
	LevelLow Level = iota
	// LevelMedium renders half shaded.
	LevelMedium
	// LevelHigh renders fully shaded.
	LevelHigh
)

func (l Level) String() string {
	switch l {
	case LevelLow:
		return "low"
	case LevelMedium:
		return "MEDIUM"
	case LevelHigh:
		return "*HIGH*"
	}
	return "?"
}

// cell glyph for heatmap rendering.
func (l Level) glyph() string {
	switch l {
	case LevelLow:
		return "░░░░░░"
	case LevelMedium:
		return "▒▒▒▒▒▒"
	case LevelHigh:
		return "██████"
	}
	return "      "
}

// Table is a generic renderable result table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// String renders the table as aligned ASCII.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len([]rune(c))
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len([]rune(cell)) > widths[i] {
				widths[i] = len([]rune(cell))
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	sep := "+"
	for _, w := range widths {
		sep += strings.Repeat("-", w+2) + "+"
	}
	b.WriteString(sep + "\n|")
	for i, c := range t.Columns {
		fmt.Fprintf(&b, " %-*s |", widths[i], c)
	}
	b.WriteString("\n" + sep + "\n")
	for _, row := range t.Rows {
		b.WriteString("|")
		for i, cell := range row {
			if i < len(widths) {
				fmt.Fprintf(&b, " %-*s |", widths[i], cell)
			}
		}
		b.WriteString("\n")
	}
	b.WriteString(sep + "\n")
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	return b.String()
}

func yn(b bool) string {
	if b {
		return "yes"
	}
	return "-"
}

func secure(b bool) string {
	if b {
		return "blocked"
	}
	return "LEAKS"
}
