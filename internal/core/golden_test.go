package core

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"github.com/intrust-sim/intrust/internal/engine"
	"github.com/intrust-sim/intrust/internal/scenario"
	"github.com/intrust-sim/intrust/internal/stats"
)

// The golden grid pins the full scenario × architecture × defense class
// table — every registered scenario against every architecture under
// every cataloged defense (the `-defense all` axis), 1280 cells — to a
// checked-in file. The file is generated from the FIXED-budget engine
// (go test -run TestGoldenGrid -update) and the test replays the grid
// through the ADAPTIVE sequential-sampling engine: the two must agree on
// every cell's broken/mitigated/n-a class. That is the adaptive engine's
// contract — it changes what a verdict costs, never what it is — and the
// same file guards any future refactor of the scenario catalog, the
// defense registry or the sweep.

// goldenSamples is the requested per-cell budget of the golden grid
// (raised to each scenario's floor as usual). Large enough that no
// applicable cell sits on a statistical knife edge, small enough that
// regenerating and replaying the 1280 cells stays affordable.
const goldenSamples = 96

var updateGolden = flag.Bool("update", false, "rewrite testdata/golden_grid.tsv from the fixed-budget engine")

// raceDetectorEnabled is set by race_test.go under `go test -race`.
var raceDetectorEnabled bool

func goldenPath() string { return filepath.Join("testdata", "golden_grid.tsv") }

// goldenLines renders sweep results as sorted "scenario arch defense
// class" TSV lines. Error rows render as class "error" so a broken
// engine can never silently produce a matching table.
func goldenLines(results []engine.Result) []string {
	lines := make([]string, 0, len(results))
	for i := range results {
		r := &results[i]
		class := "error"
		if !r.Failed() {
			if class = scenario.VerdictClass(r.Verdict); class == "" {
				class = "unknown"
			}
		}
		lines = append(lines, fmt.Sprintf("%s\t%s\t%s\t%s",
			sweepScenarioName(r.Name), r.Arch, sweepDefenseLabel(r.Name), class))
	}
	sort.Strings(lines)
	return lines
}

func goldenGrid(t *testing.T, opt SweepOptions) []engine.Result {
	t.Helper()
	exps, err := SweepExperimentsWith(nil, nil, []string{"all"}, opt)
	if err != nil {
		t.Fatal(err)
	}
	results, err := engine.New(0).Run(context.Background(), exps)
	if err != nil {
		t.Fatal(err)
	}
	return results
}

// TestGoldenGrid replays the full 1280-cell grid through the adaptive
// engine at the default confidence and compares every cell's class
// against the checked-in fixed-budget golden table. Run with -update to
// regenerate the table from the fixed engine after intentionally
// changing verdict semantics (new scenarios, new defenses, regraded
// thresholds) — never to paper over an unintended flip.
func TestGoldenGrid(t *testing.T) {
	if raceDetectorEnabled && !*updateGolden {
		t.Skip("skipping the 1280-cell golden replay under the race detector; the concurrent sweep tests cover the engine's synchronization")
	}
	if *updateGolden {
		results := goldenGrid(t, SweepOptions{Samples: goldenSamples})
		data := strings.Join(goldenLines(results), "\n") + "\n"
		if err := os.MkdirAll(filepath.Dir(goldenPath()), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath(), []byte(data), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d golden cells from the fixed-budget engine", len(results))
	}
	want, err := os.ReadFile(goldenPath())
	if err != nil {
		t.Fatalf("golden grid missing (run `go test -run TestGoldenGrid -update ./internal/core`): %v", err)
	}
	wantLines := strings.Split(strings.TrimRight(string(want), "\n"), "\n")

	results := goldenGrid(t, SweepOptions{Samples: goldenSamples, Adaptive: &stats.Policy{}})
	gotLines := goldenLines(results)

	nScen, nArch, nDef := len(scenario.All()), len(AllArchitectures), len(AllDefenseNames())
	if wantCells := nScen * nArch * nDef; len(gotLines) != wantCells {
		t.Errorf("grid covers %d cells, want %d (%d scenarios x %d architectures x %d defenses)",
			len(gotLines), wantCells, nScen, nArch, nDef)
	}
	if len(gotLines) != len(wantLines) {
		t.Fatalf("adaptive grid has %d cells, golden has %d", len(gotLines), len(wantLines))
	}
	diffs := 0
	for i := range wantLines {
		if gotLines[i] != wantLines[i] {
			diffs++
			if diffs <= 20 {
				t.Errorf("cell class changed:\n  golden:   %s\n  adaptive: %s", wantLines[i], gotLines[i])
			}
		}
	}
	if diffs > 20 {
		t.Errorf("... and %d more changed cells", diffs-20)
	}
	if diffs > 0 {
		t.Errorf("%d/%d cells changed class: the adaptive engine must change cost, never verdicts", diffs, len(wantLines))
	}

	// The cost side of the contract: the replay must actually have
	// sampled adaptively (decisions present, with a real saving), not
	// silently fallen back to fixed budgets.
	s := engine.Summarize(results, 0)
	if s.TotalSamples == 0 || s.FixedSamples == 0 {
		t.Fatal("adaptive replay carries no sampling decisions")
	}
	if s.EarlyStopped == 0 {
		t.Error("adaptive replay stopped no cell early")
	}
	if ratio := float64(s.FixedSamples) / float64(s.TotalSamples); ratio < 1.5 {
		t.Errorf("adaptive grid burned %d samples vs %d fixed (%.2fx saving), want >= 1.5x",
			s.TotalSamples, s.FixedSamples, ratio)
	}
}
