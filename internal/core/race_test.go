//go:build race

package core

// The race detector slows the 1280-cell golden replay by an order of
// magnitude without adding coverage the smaller concurrent sweep tests
// don't already have; the golden grid is about verdict preservation, not
// synchronization.
func init() { raceDetectorEnabled = true }
