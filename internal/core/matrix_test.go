package core

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"github.com/intrust-sim/intrust/internal/engine"
	"github.com/intrust-sim/intrust/internal/stats"
)

// TestDeterminismMatrix is the scheduler-independence pin for the full
// none+stock grid: every registered scenario on every architecture under
// the undefended and stock defense layers, run through the ADAPTIVE
// engine (so the comparison covers samples-used and confidence, the
// fields most sensitive to scheduling), must be byte-identical across
// every (parallel, shard-size) combination of the work-stealing
// scheduler. This is the guarantee that lets the sweep earn multi-core
// scaling without ever re-validating verdicts: workers, deques and
// steals move work around, never results.
func TestDeterminismMatrix(t *testing.T) {
	exps, err := SweepExperimentsWith(nil, nil, []string{"none", "stock"},
		SweepOptions{Samples: 32, Adaptive: &stats.Policy{}})
	if err != nil {
		t.Fatal(err)
	}
	run := func(parallel, shard int) []engine.Result {
		e := engine.New(parallel)
		e.ShardSize = shard
		results, err := e.Run(context.Background(), exps)
		if err != nil {
			t.Fatal(err)
		}
		return results
	}
	ref := stripTiming(run(1, 1))

	// The reference must actually carry the adaptive fields the matrix
	// claims to compare.
	sampled := 0
	for i := range ref {
		if ref[i].Sampling != nil {
			sampled++
		}
	}
	if sampled == 0 {
		t.Fatal("no cell carries a sampling decision; the matrix would compare nothing")
	}

	parallels := []int{1, 2, 8}
	shards := []int{1, 4, 64}
	if testing.Short() || raceDetectorEnabled {
		// The race detector (and -short) trims the matrix to its widest
		// corners: maximum workers at the finest and coarsest steal
		// granularity. Synchronization coverage is identical — every
		// deque/steal code path runs — only the redundant middle
		// combinations drop.
		parallels, shards = []int{8}, []int{1, 64}
	}
	for _, par := range parallels {
		for _, shard := range shards {
			if par == 1 && shard == 1 {
				continue
			}
			t.Run(fmt.Sprintf("parallel=%d/shard=%d", par, shard), func(t *testing.T) {
				got := stripTiming(run(par, shard))
				if reflect.DeepEqual(ref, got) {
					return
				}
				for i := range ref {
					if !reflect.DeepEqual(ref[i], got[i]) {
						t.Fatalf("cell %s diverged from the (parallel=1, shard=1) reference:\nref: %+v\ngot: %+v",
							ref[i].Name, ref[i], got[i])
					}
				}
				t.Fatal("results differ from reference")
			})
		}
	}
}
