package core

import (
	"context"

	"github.com/intrust-sim/intrust/internal/attestsvc"
	"github.com/intrust-sim/intrust/internal/engine"
	"github.com/intrust-sim/intrust/internal/scenario"
)

// This file is the seam between the sweep grid and the attestation
// lifecycle: revocation is *driven by the sweep*, so the attestation
// service consumes grid cells — computed here, by the serve tier's
// cached cell path, or read from a fixture — as evidence. Only the
// `none`-defense layer matters: a broken undefended cell means the
// architecture's baseline TCB is compromised and its quotes must claim
// the stock defense configuration to verify.

// RevocationCellKeys enumerates the none-defense grid slice revocation
// is derived from: every requested scenario × architecture cell with the
// defense axis pinned to "none". The returned keys are canonical, so the
// serve tier computes them through the same content-addressed cache as
// any other cell request.
func RevocationCellKeys(archs, attacks []string, opt CellOptions) ([]CellKey, error) {
	return EnumerateCells(archs, attacks, []string{"none"}, opt)
}

// AttestCell projects one computed grid cell onto the attestation
// service's evidence type. Errored cells classify as "" and therefore
// never revoke — an experiment failure is not evidence of a broken TCB.
func AttestCell(k CellKey, r engine.Result) attestsvc.Cell {
	class := ""
	if r.Err == "" {
		class = scenario.VerdictClass(r.Verdict)
	}
	return attestsvc.Cell{
		Scenario: k.Scenario,
		Arch:     k.Arch,
		Defense:  k.Defense,
		Class:    class,
	}
}

// ComputeRevocations runs the none-defense revocation grid through the
// engine worker pool and folds the verdicts into revocation state — the
// CLI's one-call path (the serve tier assembles the same state from its
// cell cache instead). Deterministic for a given (axes, options) request
// under any parallelism, like every sweep.
func ComputeRevocations(ctx context.Context, archs, attacks []string, opt CellOptions, parallel int) (*attestsvc.Revocations, error) {
	keys, err := RevocationCellKeys(archs, attacks, opt)
	if err != nil {
		return nil, err
	}
	exps := make([]engine.Experiment, len(keys))
	for i, k := range keys {
		exp, err := k.Experiment()
		if err != nil {
			return nil, err
		}
		exps[i] = exp
	}
	eng := engine.New(parallel)
	results, err := eng.Run(ctx, exps)
	if err != nil {
		return nil, err
	}
	cells := make([]attestsvc.Cell, len(results))
	for i := range results {
		cells[i] = AttestCell(keys[i], results[i])
	}
	return attestsvc.Revoke(cells), nil
}
