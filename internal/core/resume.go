package core

import (
	"context"
	"encoding/json"
	"fmt"

	"github.com/intrust-sim/intrust/internal/diskcache"
	"github.com/intrust-sim/intrust/internal/engine"
)

// Incremental sweeps: a grid run that persists every cell result into a
// tamper-evident diskcache.Store and, on the next run, recomputes only
// the cells whose inputs changed. Soundness rests on the same argument
// as the serve layer's cache — a cell's result is a pure function of
// its canonical CellKey, and CellKey.Experiment() rebuilds the exact
// engine job (seed included) the full sweep would run — so a reused
// result is bit-identical to what recomputation would produce, under
// any subset, superset or reordering of the selection.
//
// Addresses are disjoint from the serve layer's by construction: serve
// stores rendered response bodies under the bare key encoding, resume
// stores engine.Result JSON under "result|v1|"+encoding, and the
// store's authenticated address echo makes crossing them a reject, not
// a confusion. The two can therefore share one -cache-dir.

// resultAddrPrefix namespaces sweep result bodies within a shared
// cache directory; bump the version if the persisted Result layout
// ever changes incompatibly.
const resultAddrPrefix = "result|v1|"

// manifestAddr is the reserved address of the sweep manifest: the map
// from grid coordinate to the result address its last run persisted.
// The manifest is what distinguishes a *changed* cell (same coordinate,
// different measurement inputs) from a *new* one.
const manifestAddr = "manifest|v1|sweep"

// ResultAddr is the disk-cache address of one cell's persisted
// engine.Result.
func ResultAddr(k CellKey) string { return resultAddrPrefix + k.Encode() }

// coordinate names a grid point independent of its measurement knobs:
// the manifest keys on it so a re-run with different samples/confidence
// reports those cells as changed rather than new.
func coordinate(k CellKey) string {
	return escapeKeyField(k.Scenario) + "|" + escapeKeyField(k.Arch) + "|" + escapeKeyField(k.Defense)
}

// ResumeSummary accounts one incremental run: how much of the grid was
// served from disk and why the rest computed.
type ResumeSummary struct {
	// Cells is the enumerated grid size.
	Cells int `json:"cells"`
	// Reused counts cells answered from an authenticated disk entry.
	Reused int `json:"reused"`
	// Computed counts cells that ran the engine (New+Changed+Invalid).
	Computed int `json:"computed"`
	// New counts computed cells whose coordinate the manifest had never
	// seen.
	New int `json:"new"`
	// Changed counts computed cells whose coordinate was persisted
	// under different measurement inputs (samples, confidence, seed).
	Changed int `json:"changed"`
	// Invalid counts computed cells the manifest claimed were persisted
	// but whose entry was missing or failed authentication (torn,
	// tampered, wrong secret) — quarantined and recomputed.
	Invalid int `json:"invalid"`
}

// SweepResume runs the selected grid incrementally against a
// persistent store: every cell already present (authenticated, same
// inputs) is reused; the rest compute on eng and persist. Results come
// back in grid order — exactly the order a full sweep enumerates — so
// SweepTable and SweepDiff render them identically to a cold run.
// Failed cells are returned but never persisted: the next run retries
// them.
func SweepResume(ctx context.Context, store *diskcache.Store, eng *engine.Engine, archs, attacks, defenses []string, opt CellOptions) ([]engine.Result, ResumeSummary, error) {
	keys, err := EnumerateCells(archs, attacks, defenses, opt)
	if err != nil {
		return nil, ResumeSummary{}, err
	}
	prior := loadManifest(store)
	sum := ResumeSummary{Cells: len(keys)}

	results := make([]engine.Result, len(keys))
	loaded := make([]bool, len(keys))
	var coldIdx []int
	var coldExps []engine.Experiment
	for i, k := range keys {
		addr := ResultAddr(k)
		if body, ok := store.Get(addr); ok {
			var r engine.Result
			if json.Unmarshal(body, &r) == nil {
				results[i], loaded[i] = r, true
				sum.Reused++
				continue
			}
			// An authenticated body that does not decode means the
			// persisted layout drifted without a version bump; recompute
			// rather than trust it.
			sum.Invalid++
		} else if prevAddr, had := prior[coordinate(k)]; !had {
			sum.New++
		} else if prevAddr != addr {
			sum.Changed++
		} else {
			// The manifest promised this exact address; its entry is
			// gone or was rejected (and quarantined) by the store.
			sum.Invalid++
		}
		exp, err := k.Experiment()
		if err != nil {
			// EnumerateCells only emits canonical keys, so this is a
			// programming error worth surfacing, not a per-cell failure.
			return nil, sum, fmt.Errorf("resume: cell %s: %w", k.Encode(), err)
		}
		coldIdx = append(coldIdx, i)
		coldExps = append(coldExps, exp)
	}
	sum.Computed = len(coldIdx)

	var runErr error
	if len(coldExps) > 0 {
		var cold []engine.Result
		cold, runErr = eng.Run(ctx, coldExps)
		for j, r := range cold {
			results[coldIdx[j]] = r
		}
	}

	// Persist the fresh successes and republish the manifest. Failed
	// cells drop out of the manifest entirely, so a later run counts
	// them new and retries.
	manifest := make(map[string]string, len(keys))
	var putErr error
	for i, k := range keys {
		r := &results[i]
		if r.Failed() {
			continue
		}
		addr := ResultAddr(k)
		if !loaded[i] {
			body, err := json.Marshal(r)
			if err == nil {
				err = store.Put(addr, body)
			}
			if err != nil && putErr == nil {
				putErr = fmt.Errorf("resume: persist %s: %w", k.Encode(), err)
			}
		}
		manifest[coordinate(k)] = addr
	}
	// Coordinates outside this selection keep their prior entries: a
	// subset run must not forget the rest of the grid.
	for coord, addr := range prior {
		if _, ok := manifest[coord]; !ok {
			manifest[coord] = addr
		}
	}
	if body, err := json.Marshal(manifest); err == nil {
		if err := store.Put(manifestAddr, body); err != nil && putErr == nil {
			putErr = fmt.Errorf("resume: persist manifest: %w", err)
		}
	}
	if runErr != nil {
		return results, sum, runErr
	}
	return results, sum, putErr
}

// loadManifest reads the prior run's coordinate map; a missing,
// rejected or undecodable manifest degrades to empty — every cold cell
// then counts as new, which only affects the summary's wording, never
// results.
func loadManifest(store *diskcache.Store) map[string]string {
	body, ok := store.Get(manifestAddr)
	if !ok {
		return map[string]string{}
	}
	var m map[string]string
	if json.Unmarshal(body, &m) != nil || m == nil {
		return map[string]string{}
	}
	return m
}
