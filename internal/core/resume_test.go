package core

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"github.com/intrust-sim/intrust/internal/diskcache"
	"github.com/intrust-sim/intrust/internal/engine"
)

// The resume tests sweep a small fixed-budget slice so a full pass
// stays fast: 2 scenarios x 1 arch x 2 defenses = 4 cells.
var (
	resumeArchs    = []string{"sgx"}
	resumeAttacks  = []string{"spectre-v1", "flush+reload"}
	resumeDefenses = []string{"none", "stock"}
	resumeOpt      = CellOptions{Samples: 16}
)

func resumeStore(t *testing.T) *diskcache.Store {
	t.Helper()
	s, err := diskcache.Open(t.TempDir(), "resume-test")
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func runResume(t *testing.T, store *diskcache.Store, opt CellOptions) ([]engine.Result, ResumeSummary) {
	t.Helper()
	results, sum, err := SweepResume(context.Background(), store, engine.New(0), resumeArchs, resumeAttacks, resumeDefenses, opt)
	if err != nil {
		t.Fatalf("SweepResume: %v", err)
	}
	return results, sum
}

// marshal renders results for byte-level comparison.
func marshalResults(t *testing.T, results []engine.Result) []string {
	t.Helper()
	out := make([]string, len(results))
	for i := range results {
		b, err := json.Marshal(&results[i])
		if err != nil {
			t.Fatal(err)
		}
		out[i] = string(b)
	}
	return out
}

// TestSweepResumeColdThenWarm is the incremental sweep's core contract:
// the first run computes and persists every cell, the second run
// reuses every cell byte-identically with zero engine work.
func TestSweepResumeColdThenWarm(t *testing.T) {
	store := resumeStore(t)
	cold, sum := runResume(t, store, resumeOpt)
	if sum.Cells != 4 || sum.Computed != 4 || sum.New != 4 || sum.Reused != 0 {
		t.Fatalf("cold summary = %+v; want 4 cells, all computed as new", sum)
	}

	warm, sum := runResume(t, store, resumeOpt)
	if sum.Reused != 4 || sum.Computed != 0 {
		t.Fatalf("warm summary = %+v; want all 4 reused", sum)
	}
	coldJSON, warmJSON := marshalResults(t, cold), marshalResults(t, warm)
	for i := range coldJSON {
		if coldJSON[i] != warmJSON[i] {
			t.Errorf("cell %d replay differs:\ncold: %s\nwarm: %s", i, coldJSON[i], warmJSON[i])
		}
	}
	// Writes from the warm run: the manifest republish only, never a
	// result body.
	if w := store.Counters().Writes; w != 5+1 {
		t.Errorf("writes = %d; want 6 (4 results + 2 manifest publishes)", w)
	}
}

// TestSweepResumeMatchesFullSweep pins the reuse-soundness argument:
// the resumed grid's verdicts and rows are exactly what a plain
// (non-persistent) sweep of the same selection computes.
func TestSweepResumeMatchesFullSweep(t *testing.T) {
	results, _ := runResume(t, resumeStore(t), resumeOpt)

	exps, err := SweepExperimentsWith(resumeArchs, resumeAttacks, resumeDefenses, SweepOptions{Samples: resumeOpt.Samples})
	if err != nil {
		t.Fatal(err)
	}
	full, err := engine.New(0).Run(context.Background(), exps)
	if err != nil {
		t.Fatal(err)
	}
	if len(full) != len(results) {
		t.Fatalf("resume enumerated %d cells, sweep %d", len(results), len(full))
	}
	for i := range full {
		if results[i].Verdict != full[i].Verdict || results[i].Detail != full[i].Detail {
			t.Errorf("cell %d: resume %q/%q vs sweep %q/%q",
				i, results[i].Verdict, results[i].Detail, full[i].Verdict, full[i].Detail)
		}
	}
}

// TestSweepResumeChangedInputs: re-running the same coordinates under a
// different sample budget recomputes everything and reports the cells
// as changed, not new.
func TestSweepResumeChangedInputs(t *testing.T) {
	store := resumeStore(t)
	runResume(t, store, resumeOpt)

	_, sum := runResume(t, store, CellOptions{Samples: 32})
	if sum.Computed != 4 || sum.Changed != 4 || sum.New != 0 || sum.Reused != 0 {
		t.Fatalf("changed-budget summary = %+v; want all 4 changed", sum)
	}
	// Stepping back to the original budget reuses the original entries:
	// changed inputs add addresses, they never destroy prior results.
	_, sum = runResume(t, store, resumeOpt)
	if sum.Reused != 4 || sum.Computed != 0 {
		t.Fatalf("step-back summary = %+v; want all 4 reused", sum)
	}
}

// TestSweepResumeSubsetThenSuperset: growing the selection reuses the
// already-swept cells and computes only the genuinely new coordinates.
func TestSweepResumeSubsetThenSuperset(t *testing.T) {
	store := resumeStore(t)
	_, sum, err := SweepResume(context.Background(), store, engine.New(0), resumeArchs, resumeAttacks, []string{"none"}, resumeOpt)
	if err != nil || sum.Computed != 2 {
		t.Fatalf("subset = %+v (%v); want 2 computed", sum, err)
	}
	_, sum = runResume(t, store, resumeOpt)
	if sum.Reused != 2 || sum.Computed != 2 || sum.New != 2 {
		t.Fatalf("superset = %+v; want 2 reused + 2 new", sum)
	}
}

// TestSweepResumeTamperedEntry: a corrupted result body is quarantined
// and recomputed as invalid — the grid self-heals and the replayed
// verdicts still match.
func TestSweepResumeTamperedEntry(t *testing.T) {
	store := resumeStore(t)
	cold, _ := runResume(t, store, resumeOpt)

	// Corrupt every persisted result body, sparing the manifest so the
	// cells classify as invalid (promised but unreadable), not new.
	manifestFile := hex.EncodeToString(sha256sum(manifestAddr)) + ".cell"
	files, err := filepath.Glob(filepath.Join(store.Dir(), "*.cell"))
	if err != nil || len(files) != 5 {
		t.Fatalf("want 5 entries (4 results + manifest), got %d (%v)", len(files), err)
	}
	for _, f := range files {
		if filepath.Base(f) == manifestFile {
			continue
		}
		if err := os.WriteFile(f, []byte("garbage"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	healed, sum := runResume(t, store, resumeOpt)
	if sum.Invalid != 4 || sum.Computed != 4 || sum.Reused != 0 {
		t.Fatalf("tampered summary = %+v; want all 4 invalid and recomputed", sum)
	}
	for i := range cold {
		if healed[i].Verdict != cold[i].Verdict {
			t.Errorf("cell %d healed verdict %q != original %q", i, healed[i].Verdict, cold[i].Verdict)
		}
	}
	if bad, _ := filepath.Glob(filepath.Join(store.Dir(), "*.bad")); len(bad) != 4 {
		t.Errorf("quarantined %d files; want 4", len(bad))
	}
	// And the healed grid is warm again.
	if _, sum := runResume(t, store, resumeOpt); sum.Reused != 4 {
		t.Errorf("post-heal summary = %+v; want all reused", sum)
	}
}

// TestSweepResumeCancelledRunRetries: a cancelled run persists nothing
// it did not finish, and the next run simply computes the remainder —
// failed cells never poison the manifest.
func TestSweepResumeCancelledRunRetries(t *testing.T) {
	store := resumeStore(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := SweepResume(ctx, store, engine.New(0), resumeArchs, resumeAttacks, resumeDefenses, resumeOpt)
	if err == nil {
		t.Fatal("cancelled run reported no error")
	}

	_, sum := runResume(t, store, resumeOpt)
	if sum.Reused+sum.Computed != 4 || sum.Invalid != 0 {
		t.Fatalf("retry summary = %+v; want the full grid with no invalid entries", sum)
	}
	if _, sum := runResume(t, store, resumeOpt); sum.Reused != 4 || sum.Computed != 0 {
		t.Fatalf("post-retry summary = %+v; want all reused", sum)
	}
}

// TestResultAddrDisjointFromServe: sweep result addresses can never
// collide with the serve layer's bare cell addresses in a shared
// directory.
func TestResultAddrDisjointFromServe(t *testing.T) {
	k, err := ResolveCell("spectre-v1", "sgx", "none", resumeOpt)
	if err != nil {
		t.Fatal(err)
	}
	if ResultAddr(k) == k.Encode() {
		t.Fatal("result address equals the serve-layer cell address")
	}
}

func sha256sum(s string) []byte {
	h := sha256.Sum256([]byte(s))
	return h[:]
}
