package core

import (
	"context"
	"strings"
	"testing"
	"time"

	"github.com/intrust-sim/intrust/internal/stats"
)

// TestRunCellCancelledContext pins cooperative cancellation through the
// cell runner: a dead context stops both the adaptive and fixed-budget
// paths at their first checkpoint — no verdict is ever produced from a
// partial measurement, and the failure names the cancellation.
func TestRunCellCancelledContext(t *testing.T) {
	for name, opt := range map[string]CellOptions{
		"adaptive": {Confidence: stats.DefaultConfidence},
		"fixed":    {Samples: 64},
	} {
		key, err := ResolveCell("spectre-v1", "sgx", "none", opt)
		if err != nil {
			t.Fatalf("%s: ResolveCell: %v", name, err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		start := time.Now()
		res, err := RunCell(ctx, key)
		if elapsed := time.Since(start); elapsed > 30*time.Second {
			t.Fatalf("%s: cancelled cell still ran %v", name, elapsed)
		}
		if err == nil && !res.Failed() {
			t.Fatalf("%s: cancelled cell produced verdict %q", name, res.Verdict)
		}
		if err == nil && !strings.Contains(res.Err, "context canceled") {
			t.Fatalf("%s: failure %q does not name the cancellation", name, res.Err)
		}
	}
}
