package core

import (
	"bytes"
	"context"
	"reflect"
	"strings"
	"testing"

	"github.com/intrust-sim/intrust/internal/engine"
	"github.com/intrust-sim/intrust/internal/scenario"
	"github.com/intrust-sim/intrust/internal/stats"
)

func adaptiveResults(t *testing.T, parallel int, opt SweepOptions, axes ...[]string) []engine.Result {
	t.Helper()
	var archs, attacks, defenses []string
	if len(axes) > 0 {
		archs = axes[0]
	}
	if len(axes) > 1 {
		attacks = axes[1]
	}
	if len(axes) > 2 {
		defenses = axes[2]
	}
	exps, err := SweepExperimentsWith(archs, attacks, defenses, opt)
	if err != nil {
		t.Fatal(err)
	}
	results, err := engine.New(parallel).Run(context.Background(), exps)
	if err != nil {
		t.Fatal(err)
	}
	return results
}

// TestAdaptiveDeterministicAcrossParallelism pins the seeding contract
// under adaptive sampling: stopping points, sample costs and
// measurements are functions of the per-job seed alone, so the adaptive
// grid is byte-identical at -parallel 1 and -parallel 8.
func TestAdaptiveDeterministicAcrossParallelism(t *testing.T) {
	opt := SweepOptions{Samples: 48, Adaptive: &stats.Policy{}}
	axes := [][]string{nil, {"cachesca", "kocher-timing", "dpa", "spectre-v1"}, {"none", "stock", "ct-aes"}}
	serial := adaptiveResults(t, 1, opt, axes...)
	parallel := adaptiveResults(t, 8, opt, axes...)
	if !reflect.DeepEqual(stripTiming(serial), stripTiming(parallel)) {
		t.Error("adaptive sweep results differ between -parallel 1 and -parallel 8")
	}
}

// TestAdaptiveMatchesFixedVerdicts replays a mixed slice of the grid —
// sequential, one-shot, floored and mitigated cells — in both sampling
// modes and checks per-cell class agreement plus the full-pass identity:
// a cell whose sequential pass drains the whole checkpoint ladder has
// measured exactly the fixed-budget statistic, bit for bit.
func TestAdaptiveMatchesFixedVerdicts(t *testing.T) {
	axes := [][]string{
		{"sgx", "sanctum", "trustzone", "sancus"},
		{"flush+reload", "prime+probe", "tlb-channel", "kocher-timing", "cpa", "spectre-v1", "bellcore"},
		{"none", "stock", "ct-aes", "masked-aes"},
	}
	fixed := adaptiveResults(t, 2, SweepOptions{Samples: 64}, axes...)
	adaptive := adaptiveResults(t, 2, SweepOptions{Samples: 64, Adaptive: &stats.Policy{}}, axes...)
	if len(fixed) != len(adaptive) {
		t.Fatalf("grid sizes differ: %d fixed vs %d adaptive", len(fixed), len(adaptive))
	}
	for i := range fixed {
		f, a := &fixed[i], &adaptive[i]
		if f.Name != a.Name {
			t.Fatalf("cell order diverged: %s vs %s", f.Name, a.Name)
		}
		if fc, ac := scenario.VerdictClass(f.Verdict), scenario.VerdictClass(a.Verdict); fc != ac {
			t.Errorf("%s: fixed class %q, adaptive class %q", f.Name, fc, ac)
		}
		if f.Verdict == "n/a" {
			if a.Sampling != nil {
				t.Errorf("%s: n/a cell carries a sampling decision", a.Name)
			}
			continue
		}
		if a.Sampling == nil {
			t.Errorf("%s: applicable adaptive cell carries no sampling decision", a.Name)
			continue
		}
		// Full-pass identity: an undefeated sequential cell that used its
		// whole reference budget in one pass measured what fixed measured.
		d := a.Sampling
		if d.Reference > 0 && d.SamplesUsed == d.Reference && d.Passes == 1 &&
			!reflect.DeepEqual(f.Rows, a.Rows) {
			t.Errorf("%s: full-budget adaptive pass measured %v, fixed measured %v", a.Name, a.Rows, f.Rows)
		}
		if d.Confidence < 0.5 || d.Confidence >= 1 {
			t.Errorf("%s: confidence %v out of range", a.Name, d.Confidence)
		}
		if d.SamplesUsed > stats.DefaultEscalation*d.Reference {
			t.Errorf("%s: burned %d samples past the %dx cap", a.Name, d.SamplesUsed, stats.DefaultEscalation)
		}
	}
}

// TestAdaptiveOneShotScenarios pins the one-shot path: budget-independent
// scenarios settle in one mount with no sample dimension, and their
// measurement matches the fixed engine exactly (same seed, same mount).
func TestAdaptiveOneShotScenarios(t *testing.T) {
	axes := [][]string{{"sgx"}, {"transient", "dfa-piret-quisquater", "bellcore"}, {"none"}}
	fixed := adaptiveResults(t, 1, SweepOptions{Samples: 32}, axes...)
	adaptive := adaptiveResults(t, 1, SweepOptions{Samples: 32, Adaptive: &stats.Policy{}}, axes...)
	for i := range adaptive {
		a := &adaptive[i]
		if a.Verdict == "n/a" {
			continue
		}
		d := a.Sampling
		if d == nil {
			t.Fatalf("%s: no sampling decision", a.Name)
		}
		if d.SamplesUsed != 0 || d.Reference != 0 || d.Passes != 1 || !d.Decided {
			t.Errorf("%s: one-shot decision %+v", a.Name, d)
		}
		if !reflect.DeepEqual(fixed[i].Rows, a.Rows) {
			t.Errorf("%s: one-shot adaptive mount measured %v, fixed measured %v", a.Name, a.Rows, fixed[i].Rows)
		}
	}
}

// TestAdaptiveSavesSamples pins the cost claim on a floored slice of the
// grid: the broken DPA/Kocher/CPA cells must settle for well under the
// fixed budget at the default confidence.
func TestAdaptiveSavesSamples(t *testing.T) {
	axes := [][]string{{"sgx", "trustzone"}, {"dpa", "kocher-timing", "cpa"}, {"none"}}
	results := adaptiveResults(t, 2, SweepOptions{Samples: 64, Adaptive: &stats.Policy{}}, axes...)
	s := engine.Summarize(results, 0)
	if s.TotalSamples == 0 || s.FixedSamples == 0 {
		t.Fatal("no sampling decisions")
	}
	if ratio := float64(s.FixedSamples) / float64(s.TotalSamples); ratio < 2 {
		t.Errorf("floored broken cells saved only %.2fx (%d vs %d fixed), want >= 2x",
			ratio, s.TotalSamples, s.FixedSamples)
	}
	if s.EarlyStopped != len(results) {
		t.Errorf("%d/%d broken cells stopped early", s.EarlyStopped, len(results))
	}
}

// TestAdaptiveSweepTableAndJSON checks the surfacing: sample costs and
// confidences reach the rendered table, the diff and the JSON report,
// and survive a round-trip.
func TestAdaptiveSweepTableAndJSON(t *testing.T) {
	axes := [][]string{{"sgx"}, {"flush+reload", "spectre-v1"}, {"none", "way-partition"}}
	results := adaptiveResults(t, 2, SweepOptions{Samples: 64, Adaptive: &stats.Policy{}}, axes...)

	rendered := SweepTable(results).String()
	for _, want := range []string{"samples", "conf", "/64", "1-shot", "adaptive sampling:", "cells early"} {
		if !strings.Contains(rendered, want) {
			t.Errorf("sweep table missing %q:\n%s", want, rendered)
		}
	}

	dt, err := SweepDiff(results)
	if err != nil {
		t.Fatal(err)
	}
	drendered := dt.String()
	if !strings.Contains(drendered, "conf") || !strings.Contains(drendered, "adaptive sampling:") {
		t.Errorf("sweep diff missing confidence surfacing:\n%s", drendered)
	}

	var buf bytes.Buffer
	if err := engine.NewReport("intrust sweep", 2, results, 0).WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.String()
	for _, want := range []string{`"sampling"`, `"confidence"`, `"samples_used"`, `"total_samples"`, `"fixed_samples"`, `"early_stopped"`} {
		if !strings.Contains(raw, want) {
			t.Errorf("JSON report missing %s", want)
		}
	}
	rep, err := engine.ReadReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for i := range rep.Results {
		if d := rep.Results[i].Sampling; d != nil && d.Reference == 64 {
			found = true
			if d.Class != stats.ClassBroken && d.Class != stats.ClassMitigated {
				t.Errorf("%s: round-tripped class %q", rep.Results[i].Name, d.Class)
			}
		}
	}
	if !found {
		t.Error("no sampling decision survived the JSON round-trip")
	}
	if rep.Summary.TotalSamples == 0 {
		t.Error("summary sample totals lost in round-trip")
	}
}

// TestAdaptiveFixedModeUnchanged guards the compatibility contract: the
// four-argument SweepExperiments stays the fixed-budget engine, byte-
// compatible with what PR 3 shipped — no sampling decisions, no cost
// columns beyond the nominal budget.
func TestAdaptiveFixedModeUnchanged(t *testing.T) {
	exps, err := SweepExperiments([]string{"sgx"}, []string{"flush+reload"}, []string{"none"}, 48)
	if err != nil {
		t.Fatal(err)
	}
	results, err := engine.New(1).Run(context.Background(), exps)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Sampling != nil {
		t.Error("fixed-budget sweep attached a sampling decision")
	}
	if !strings.Contains(results[0].Rows[0][2], "48 samples") {
		t.Errorf("fixed cell measured %v, want the nominal 48-sample budget", results[0].Rows[0])
	}
}
