package core

import (
	"context"
	"testing"

	"github.com/intrust-sim/intrust/internal/attestsvc"
)

// TestComputeRevocations pins the sweep→revocation coupling end to end:
// a one-cell grid that is broken on its arch revokes that arch's
// baseline TCB and nothing else, a mitigated one-cell grid revokes
// nothing, and the derived state is identical under different engine
// parallelism (the same determinism contract as the sweep itself).
func TestComputeRevocations(t *testing.T) {
	opt := CellOptions{Samples: 64}

	// flush+reload on undefended SGX is a broken cell (golden grid).
	rev, err := ComputeRevocations(context.Background(), []string{"sgx"}, []string{"flush+reload"}, opt, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !rev.Revoked("sgx") {
		t.Fatal("broken none-cell must revoke the arch")
	}
	if rev.MinTCB("sgx") != attestsvc.TCBStock {
		t.Fatalf("MinTCB(sgx) = %d", rev.MinTCB("sgx"))
	}
	for _, arch := range []string{"sanctum", "tytan"} {
		if rev.Revoked(arch) {
			t.Fatalf("%s revoked without evidence", arch)
		}
	}

	// Parallelism must not change the derived state.
	rev8, err := ComputeRevocations(context.Background(), []string{"sgx"}, []string{"flush+reload"}, opt, 8)
	if err != nil {
		t.Fatal(err)
	}
	if rev.Fingerprint() != rev8.Fingerprint() {
		t.Fatalf("revocation state depends on parallelism: %s vs %s", rev.Fingerprint(), rev8.Fingerprint())
	}

	// The negative case: prime+probe has no substrate on the embedded
	// tytan, so its none-cell classifies n/a and cannot revoke.
	revNA, err := ComputeRevocations(context.Background(), []string{"tytan"}, []string{"prime+probe"}, opt, 1)
	if err != nil {
		t.Fatal(err)
	}
	if revNA.Revoked("tytan") {
		t.Fatal("n/a cell must not revoke")
	}
}
