package core

import (
	"context"
	"strings"
	"testing"

	"github.com/intrust-sim/intrust/internal/engine"
	"github.com/intrust-sim/intrust/internal/stats"
)

func TestCellKeyEncodeDecodeRoundTrip(t *testing.T) {
	keys := []CellKey{
		{},
		{Scenario: "flush+reload", Arch: "sgx", Defense: "none", Samples: 64, Confidence: 0.9},
		{Scenario: "dfa-piret-quisquater", Arch: "trustzone", Defense: "ct-aes+clock-jitter", Samples: 1500, Confidence: 0.99, MaxSamples: 6000, Seed: -7},
		{Scenario: "weird|name", Arch: "a%b", Defense: "x%7Cy", Samples: -3, Confidence: 0.5},
	}
	for _, k := range keys {
		enc := k.Encode()
		got, err := DecodeCellKey(enc)
		if err != nil {
			t.Fatalf("decode(%q): %v", enc, err)
		}
		if got != k {
			t.Errorf("decode(encode(%+v)) = %+v", k, got)
		}
	}
}

func TestCellKeyDecodeRejectsGarbage(t *testing.T) {
	for _, s := range []string{
		"", "cell", "cell|v1", "cell|v2|a|b|c|1|0|0|0",
		"cell|v1|a|b|c|x|0|0|0",           // non-integer samples
		"cell|v1|a|b|c|1|zz|0|0",          // non-float confidence
		"cell|v1|a%7|b|c|1|0|0|0",         // truncated escape
		"cell|v1|a%41|b|c|1|0|0|0",        // non-canonical escape
		"cell|v1|a|b|c|1|0|0|0|extra",     // too many fields
		"grid|v1|a|b|c|1|0|0|0",           // wrong prefix
	} {
		if _, err := DecodeCellKey(s); err == nil {
			t.Errorf("DecodeCellKey(%q) accepted garbage", s)
		}
	}
}

// TestResolveCellCanonicalizes pins the content-addressing property:
// every accepted spelling of the same cell folds onto one key, so
// equivalent requests share one cache entry.
func TestResolveCellCanonicalizes(t *testing.T) {
	base, err := ResolveCell("flush+reload", "sgx", "clock-jitter+ct-aes", CellOptions{Samples: 64, Confidence: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct{ scen, arch, def string }{
		{"Flush+Reload", "SGX", "clock-jitter+ct-aes"},
		{"flush+reload", "sgx", "CT-AES+Clock-Jitter"}, // permuted, mixed case
		{"FLUSH+RELOAD", "Sgx", " ct-aes + clock-jitter "},
	} {
		k, err := ResolveCell(tc.scen, tc.arch, tc.def, CellOptions{Samples: 64, Confidence: 0.9})
		if err != nil {
			t.Fatalf("ResolveCell(%+v): %v", tc, err)
		}
		if k != base {
			t.Errorf("ResolveCell(%+v) = %+v, want %+v", tc, k, base)
		}
	}
	if base.Defense != "clock-jitter+ct-aes" {
		t.Errorf("canonical defense label = %q, want sorted lower-case form", base.Defense)
	}
}

func TestResolveCellRaisesFloorAndDefaults(t *testing.T) {
	// dpa declares a trace floor well above the default budget; the
	// canonical key must carry the effective cost, not the request.
	k, err := ResolveCell("dpa", "sgx", "none", CellOptions{Samples: 1})
	if err != nil {
		t.Fatal(err)
	}
	if k.Samples < 100 {
		t.Errorf("dpa key samples = %d, want the scenario floor", k.Samples)
	}
	low, err := ResolveCell("dpa", "sgx", "none", CellOptions{Samples: 2})
	if err != nil {
		t.Fatal(err)
	}
	if low != k {
		t.Errorf("two sub-floor budgets resolved to distinct keys: %+v vs %+v", low, k)
	}
	// Empty defense defaults to stock, like the CLI's -defense default.
	d, err := ResolveCell("dpa", "sgx", "", CellOptions{Samples: 2})
	if err != nil {
		t.Fatal(err)
	}
	if d.Defense != "stock" {
		t.Errorf("empty defense resolved to %q, want stock", d.Defense)
	}
	// Fixed-budget keys carry no adaptive cap.
	f, err := ResolveCell("dpa", "sgx", "none", CellOptions{Confidence: 0, MaxSamples: 999})
	if err != nil {
		t.Fatal(err)
	}
	if f.MaxSamples != 0 {
		t.Errorf("fixed-budget key kept MaxSamples = %d", f.MaxSamples)
	}
}

func TestResolveCellErrors(t *testing.T) {
	for _, tc := range []struct {
		name             string
		scen, arch, def  string
		opt              CellOptions
	}{
		{"unknown scenario", "no-such-attack", "sgx", "none", CellOptions{}},
		{"family token", "transient", "sgx", "none", CellOptions{}},
		{"all scenarios", "all", "sgx", "none", CellOptions{}},
		{"empty scenario", "", "sgx", "none", CellOptions{}},
		{"unknown arch", "dpa", "riscv", "none", CellOptions{}},
		{"all archs", "dpa", "all", "none", CellOptions{}},
		{"empty arch", "dpa", "", "none", CellOptions{}},
		{"unknown defense", "dpa", "sgx", "moat", CellOptions{}},
		{"all defenses", "dpa", "sgx", "all", CellOptions{}},
		{"low confidence", "dpa", "sgx", "none", CellOptions{Confidence: 0.3}},
		{"confidence one", "dpa", "sgx", "none", CellOptions{Confidence: 1}},
	} {
		if _, err := ResolveCell(tc.scen, tc.arch, tc.def, tc.opt); err == nil {
			t.Errorf("%s: ResolveCell(%q,%q,%q) accepted", tc.name, tc.scen, tc.arch, tc.def)
		}
	}
}

// TestEnumerateCellsMatchesSweep is the cross-surface equivalence
// guard: the HTTP surface enumerates cells through EnumerateCells, the
// CLI through SweepExperimentsWith — both must resolve any accepted
// axis spelling ("All", mixed case, "+"-combos, duplicates) to the
// same grid in the same order, or verdict surfaces drift.
func TestEnumerateCellsMatchesSweep(t *testing.T) {
	cases := []struct {
		name                      string
		archs, attacks, defenses []string
	}{
		{"defaults", nil, nil, nil},
		{"all spelled out", []string{"All"}, []string{"ALL"}, []string{"all"}},
		{"families and names", []string{"sgx", "TrustZone"}, []string{"CacheSCA", "clkscrew"}, []string{"None", "Stock"}},
		{"combo permuted", []string{"sgx"}, []string{"dpa"}, []string{"clock-jitter+CT-AES", "ct-aes+clock-jitter"}},
		{"duplicates", []string{"sgx", "sgx"}, []string{"dpa", "DPA"}, []string{"none", "none"}},
		{"mixed all", []string{"sgx", "all"}, []string{"transient"}, []string{"stock"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			keys, err := EnumerateCells(tc.archs, tc.attacks, tc.defenses, CellOptions{Samples: 64, Confidence: 0.9})
			if err != nil {
				t.Fatal(err)
			}
			exps, err := SweepExperimentsWith(tc.archs, tc.attacks, tc.defenses,
				SweepOptions{Samples: 64, Adaptive: &stats.Policy{Confidence: 0.9}})
			if err != nil {
				t.Fatal(err)
			}
			if len(keys) != len(exps) {
				t.Fatalf("EnumerateCells found %d cells, sweep %d", len(keys), len(exps))
			}
			for i, k := range keys {
				exp, err := k.Experiment()
				if err != nil {
					t.Fatalf("cell %d (%+v): %v", i, k, err)
				}
				if exp.Name != exps[i].Name {
					t.Fatalf("cell %d: key resolves to %q, sweep enumerates %q", i, exp.Name, exps[i].Name)
				}
				if exp.Seed != exps[i].Seed || exp.Samples != exps[i].Samples {
					t.Errorf("cell %d (%s): key job (seed %d, samples %d) != sweep job (seed %d, samples %d)",
						i, exp.Name, exp.Seed, exp.Samples, exps[i].Seed, exps[i].Samples)
				}
				if !strings.HasSuffix(exp.Name, "/"+k.Defense) {
					t.Errorf("cell %d: experiment %q does not end in canonical defense label %q", i, exp.Name, k.Defense)
				}
			}
		})
	}
}

// TestRunCellMatchesSweep pins the serve layer's soundness argument at
// the measurement level: a cell computed alone through RunCell is
// verdict- and sampling-identical to the same cell inside a pooled
// sweep run.
func TestRunCellMatchesSweep(t *testing.T) {
	archs := []string{"sgx", "sancus"}
	attacks := []string{"flush+reload", "spectre-v1", "bellcore"}
	defenses := []string{"none", "stock"}
	opt := SweepOptions{Samples: 64, Adaptive: &stats.Policy{}}
	exps, err := SweepExperimentsWith(archs, attacks, defenses, opt)
	if err != nil {
		t.Fatal(err)
	}
	pooled, err := engine.New(4).Run(context.Background(), exps)
	if err != nil {
		t.Fatal(err)
	}
	keys, err := EnumerateCells(archs, attacks, defenses, CellOptions{Samples: 64, Confidence: stats.DefaultConfidence})
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != len(pooled) {
		t.Fatalf("%d keys vs %d pooled results", len(keys), len(pooled))
	}
	for i, k := range keys {
		res, err := RunCell(context.Background(), k)
		if err != nil {
			t.Fatalf("RunCell(%+v): %v", k, err)
		}
		p := &pooled[i]
		if res.Verdict != p.Verdict || res.Detail != p.Detail {
			t.Errorf("%s: RunCell verdict %q/%q, sweep %q/%q", p.Name, res.Verdict, res.Detail, p.Verdict, p.Detail)
		}
		if (res.Sampling == nil) != (p.Sampling == nil) {
			t.Fatalf("%s: sampling presence differs", p.Name)
		}
		if res.Sampling != nil && *res.Sampling != *p.Sampling {
			t.Errorf("%s: RunCell sampling %+v, sweep %+v", p.Name, *res.Sampling, *p.Sampling)
		}
	}
}

func TestCellExperimentRejectsNonCanonical(t *testing.T) {
	for _, k := range []CellKey{
		{Scenario: "Flush+Reload", Arch: "sgx", Defense: "none", Samples: 64},          // scenario case
		{Scenario: "flush+reload", Arch: "SGX", Defense: "none", Samples: 64},          // arch case
		{Scenario: "flush+reload", Arch: "sgx", Defense: "ct-aes+clock-jitter", Samples: 64}, // unsorted combo
		{Scenario: "dpa", Arch: "sgx", Defense: "none", Samples: 1},                    // below the dpa trace floor
		{Scenario: "flush+reload", Arch: "sgx", Defense: "none", Samples: 64, MaxSamples: 9}, // cap without confidence
		{Scenario: "nope", Arch: "sgx", Defense: "none", Samples: 64},
		{Scenario: "flush+reload", Arch: "sgx", Defense: "fortress", Samples: 64},
	} {
		if _, err := k.Experiment(); err == nil {
			t.Errorf("Experiment accepted non-canonical key %+v", k)
		}
	}
}
